// PartitioningSession: the full adapt/rescale lifecycle, equivalence with
// the low-level entry points, snapshot/restore round-trips, and observer
// cancellation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/conversion.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"
#include "spinner/session.h"

namespace spinner {
namespace {

SpinnerConfig SmallConfig(int k = 4) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = 2;
  return config;
}

GeneratedGraph SmallWorld(uint64_t seed = 9) {
  auto ws = WattsStrogatz(400, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  return std::move(ws).value();
}

/// RAII temp file path for snapshot tests.
struct TempPath {
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempPath() { std::remove(path.c_str()); }
  const std::string path;
};

void ExpectValidAssignment(const PartitioningSession& session) {
  ASSERT_EQ(static_cast<int64_t>(session.assignment().size()),
            session.num_vertices());
  for (PartitionId l : session.assignment()) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, session.num_partitions());
  }
}

TEST(PartitioningSessionTest, OpenPartitionsFromScratch) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_TRUE(session.is_open());
  EXPECT_EQ(session.num_partitions(), 4);
  ExpectValidAssignment(session);
  EXPECT_GT(session.last_result().iterations, 0);

  // The session result matches a direct SpinnerPartitioner run.
  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  ASSERT_TRUE(converted.ok());
  SpinnerPartitioner direct(SmallConfig());
  auto direct_result = direct.Partition(*converted);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(session.assignment(), direct_result->assignment);
}

TEST(PartitioningSessionTest, DoubleOpenIsRejected) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  Status again = session.Open(g.num_vertices, g.edges, g.directed);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST(PartitioningSessionTest, LifecycleCallsBeforeOpenFail) {
  PartitioningSession session(SmallConfig());
  EXPECT_EQ(session.ApplyDelta(GraphDelta{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Rescale(8).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Refine().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Snapshot("/tmp/never-written.spns").code(),
            StatusCode::kFailedPrecondition);
}

TEST(PartitioningSessionTest, ApplyDeltaGrowsGraphAndAdaptsIncrementally) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();

  GraphDelta delta = RandomEdgeAdditions(g.num_vertices, g.edges, 40, 77);
  delta.AddVertex(10);
  for (int64_t i = 0; i < 10; ++i) {
    delta.AddEdge(g.num_vertices + i, i * 7 % g.num_vertices);
  }
  ASSERT_TRUE(session.ApplyDelta(delta).ok());
  EXPECT_EQ(session.num_vertices(), g.num_vertices + 10);
  ExpectValidAssignment(session);

  // Incremental adaptation: the overwhelming majority of existing
  // vertices keep their partition.
  const std::span<const PartitionId> after(session.assignment().data(),
                                           before.size());
  auto moved = PartitioningDifference(before, after);
  ASSERT_TRUE(moved.ok());
  EXPECT_LT(*moved, 0.5);

  // Equivalence with the manual pipeline: ApplyDelta + convert +
  // Repartition by hand produces the same assignment.
  auto new_edges = ApplyDelta(g.num_vertices, g.edges, delta);
  ASSERT_TRUE(new_edges.ok());
  auto new_converted = BuildSymmetric(g.num_vertices + 10, *new_edges);
  ASSERT_TRUE(new_converted.ok());
  SpinnerPartitioner direct(SmallConfig());
  auto direct_result = direct.Repartition(*new_converted, before);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(session.assignment(), direct_result->assignment);
}

TEST(PartitioningSessionTest, ApplyDeltaFailureLeavesStateUntouched) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();
  const size_t edges_before = session.edges().size();

  GraphDelta bad;
  bad.AddEdge(0, g.num_vertices + 100);  // outside the (un-grown) range
  ASSERT_FALSE(session.ApplyDelta(bad).ok());
  EXPECT_EQ(session.assignment(), before);
  EXPECT_EQ(session.edges().size(), edges_before);
  EXPECT_EQ(session.num_vertices(), g.num_vertices);
}

TEST(PartitioningSessionTest, RescaleTracksCurrentK) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  ASSERT_TRUE(session.Rescale(6).ok());
  EXPECT_EQ(session.num_partitions(), 6);
  ExpectValidAssignment(session);

  // Scale back in; the session knows the previous k was 6, not 4.
  ASSERT_TRUE(session.Rescale(3).ok());
  EXPECT_EQ(session.num_partitions(), 3);
  ExpectValidAssignment(session);

  EXPECT_FALSE(session.Rescale(0).ok());
  EXPECT_EQ(session.num_partitions(), 3);  // failed call changes nothing
}

TEST(PartitioningSessionTest, RescaleMatchesDirectEntryPoint) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();
  ASSERT_TRUE(session.Rescale(7).ok());

  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  ASSERT_TRUE(converted.ok());
  SpinnerPartitioner direct(SmallConfig(4));
  auto direct_result = direct.Rescale(*converted, before, 7);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(session.assignment(), direct_result->assignment);
}

TEST(PartitioningSessionTest, RefineImprovesOrKeepsQuality) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig(4);
  config.max_iterations = 3;  // deliberately under-optimized
  config.use_halting = false;
  PartitioningSession session(config);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  auto before = session.Metrics();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(session.Refine().ok());
  auto after = session.Metrics();
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->phi, before->phi - 1e-9);
}

TEST(PartitioningSessionTest, SnapshotRestoreRoundTripsExactState) {
  const GeneratedGraph g = SmallWorld();
  TempPath snapshot("session_roundtrip.spns");
  PartitioningSession session(SmallConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  ASSERT_TRUE(session.Rescale(6).ok());
  ASSERT_TRUE(session.Snapshot(snapshot.path).ok());

  PartitioningSession restored(SmallConfig(4));
  ASSERT_TRUE(restored.Restore(snapshot.path).ok());
  EXPECT_TRUE(restored.is_open());
  EXPECT_EQ(restored.num_partitions(), 6);
  EXPECT_EQ(restored.num_vertices(), session.num_vertices());
  EXPECT_EQ(restored.edges(), session.edges());
  EXPECT_EQ(restored.assignment(), session.assignment());

  // The restored session continues the lifecycle: further operations see
  // the restored assignment, so a rescale from it matches one from the
  // original session.
  PartitioningSession continued(SmallConfig(4));
  ASSERT_TRUE(continued.Restore(snapshot.path).ok());
  ASSERT_TRUE(continued.Rescale(8).ok());
  ASSERT_TRUE(session.Rescale(8).ok());
  EXPECT_EQ(continued.assignment(), session.assignment());
}

TEST(PartitioningSessionTest, RestoreRejectsGarbageFiles) {
  PartitioningSession session(SmallConfig());
  EXPECT_FALSE(session.Restore("/definitely/not/here.spns").ok());
  EXPECT_FALSE(session.is_open());
}

TEST(PartitioningSessionTest, ObserverSeesEveryIteration) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  std::vector<int> seen;
  ProgressObserver observer;
  observer.on_iteration = [&seen](const IterationPoint& pt) {
    seen.push_back(pt.iteration);
    EXPECT_GE(pt.phi, 0.0);
    EXPECT_LE(pt.phi, 1.0);
    EXPECT_GE(pt.rho, 1.0);
    return true;
  };
  session.SetProgressObserver(observer);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  ASSERT_EQ(static_cast<int>(seen.size()),
            session.last_result().iterations);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(session.last_result().cancelled);
}

TEST(PartitioningSessionTest, ObserverCancellationStopsWithinOneIteration) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig();
  config.max_iterations = 500;
  config.use_halting = false;  // would run all 500 without cancellation
  PartitioningSession session(config);
  int calls = 0;
  ProgressObserver observer;
  observer.on_iteration = [&calls](const IterationPoint&) {
    ++calls;
    return calls < 3;  // cancel on the third iteration
  };
  session.SetProgressObserver(observer);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(session.last_result().iterations, 3);
  EXPECT_TRUE(session.last_result().cancelled);
  EXPECT_FALSE(session.last_result().converged);
  ExpectValidAssignment(session);  // partial result is still complete
}

TEST(PartitioningSessionTest, CancellationTokenStopsTheRun) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig();
  config.max_iterations = 500;
  config.use_halting = false;
  PartitioningSession session(config);
  CancellationToken token;
  int calls = 0;
  ProgressObserver observer;
  observer.on_iteration = [&calls, &token](const IterationPoint&) {
    if (++calls == 2) token.Cancel();
    return true;  // the callback itself never asks to stop
  };
  observer.cancel = &token;
  session.SetProgressObserver(observer);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_EQ(session.last_result().iterations, 2);
  EXPECT_TRUE(session.last_result().cancelled);
}

}  // namespace
}  // namespace spinner
