// PartitioningSession: the full adapt/rescale lifecycle, equivalence with
// the low-level entry points, snapshot/restore round-trips, and observer
// cancellation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/conversion.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"
#include "spinner/session.h"

namespace spinner {
namespace {

SpinnerConfig SmallConfig(int k = 4) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = 2;
  return config;
}

GeneratedGraph SmallWorld(uint64_t seed = 9) {
  auto ws = WattsStrogatz(400, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  return std::move(ws).value();
}

/// RAII temp file path for snapshot tests.
struct TempPath {
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempPath() { std::remove(path.c_str()); }
  const std::string path;
};

void ExpectValidAssignment(const PartitioningSession& session) {
  ASSERT_EQ(static_cast<int64_t>(session.assignment().size()),
            session.num_vertices());
  for (PartitionId l : session.assignment()) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, session.num_partitions());
  }
}

TEST(PartitioningSessionTest, OpenPartitionsFromScratch) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_TRUE(session.is_open());
  EXPECT_EQ(session.num_partitions(), 4);
  ExpectValidAssignment(session);
  EXPECT_GT(session.last_result().iterations, 0);

  // The session result matches a direct SpinnerPartitioner run.
  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  ASSERT_TRUE(converted.ok());
  SpinnerPartitioner direct(SmallConfig());
  auto direct_result = direct.Partition(*converted);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(session.assignment(), direct_result->assignment);
}

TEST(PartitioningSessionTest, DoubleOpenIsRejected) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  Status again = session.Open(g.num_vertices, g.edges, g.directed);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST(PartitioningSessionTest, LifecycleCallsBeforeOpenFail) {
  PartitioningSession session(SmallConfig());
  EXPECT_EQ(session.ApplyDelta(GraphDelta{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Rescale(8).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Refine().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Snapshot("/tmp/never-written.spns").code(),
            StatusCode::kFailedPrecondition);
}

TEST(PartitioningSessionTest, ApplyDeltaGrowsGraphAndAdaptsIncrementally) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();

  GraphDelta delta = RandomEdgeAdditions(g.num_vertices, g.edges, 40, 77);
  delta.AddVertex(10);
  for (int64_t i = 0; i < 10; ++i) {
    delta.AddEdge(g.num_vertices + i, i * 7 % g.num_vertices);
  }
  ASSERT_TRUE(session.ApplyDelta(delta).ok());
  EXPECT_EQ(session.num_vertices(), g.num_vertices + 10);
  ExpectValidAssignment(session);

  // Incremental adaptation: the overwhelming majority of existing
  // vertices keep their partition.
  const std::span<const PartitionId> after(session.assignment().data(),
                                           before.size());
  auto moved = PartitioningDifference(before, after);
  ASSERT_TRUE(moved.ok());
  EXPECT_LT(*moved, 0.5);

  // Equivalence with the manual pipeline: ApplyDelta + convert +
  // Repartition by hand produces the same assignment.
  auto new_edges = ApplyDelta(g.num_vertices, g.edges, delta);
  ASSERT_TRUE(new_edges.ok());
  auto new_converted = BuildSymmetric(g.num_vertices + 10, *new_edges);
  ASSERT_TRUE(new_converted.ok());
  SpinnerPartitioner direct(SmallConfig());
  auto direct_result = direct.Repartition(*new_converted, before);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(session.assignment(), direct_result->assignment);
}

TEST(PartitioningSessionTest, ApplyDeltaFailureLeavesStateUntouched) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();
  const size_t edges_before = session.edges().size();

  GraphDelta bad;
  bad.AddEdge(0, g.num_vertices + 100);  // outside the (un-grown) range
  ASSERT_FALSE(session.ApplyDelta(bad).ok());
  EXPECT_EQ(session.assignment(), before);
  EXPECT_EQ(session.edges().size(), edges_before);
  EXPECT_EQ(session.num_vertices(), g.num_vertices);
}

TEST(PartitioningSessionTest, RescaleTracksCurrentK) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  ASSERT_TRUE(session.Rescale(6).ok());
  EXPECT_EQ(session.num_partitions(), 6);
  ExpectValidAssignment(session);

  // Scale back in; the session knows the previous k was 6, not 4.
  ASSERT_TRUE(session.Rescale(3).ok());
  EXPECT_EQ(session.num_partitions(), 3);
  ExpectValidAssignment(session);

  EXPECT_FALSE(session.Rescale(0).ok());
  EXPECT_EQ(session.num_partitions(), 3);  // failed call changes nothing
}

TEST(PartitioningSessionTest, RescaleMatchesDirectEntryPoint) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();
  ASSERT_TRUE(session.Rescale(7).ok());

  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  ASSERT_TRUE(converted.ok());
  SpinnerPartitioner direct(SmallConfig(4));
  auto direct_result = direct.Rescale(*converted, before, 7);
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(session.assignment(), direct_result->assignment);
}

TEST(PartitioningSessionTest, RefineImprovesOrKeepsQuality) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig(4);
  config.max_iterations = 3;  // deliberately under-optimized
  config.use_halting = false;
  PartitioningSession session(config);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  auto before = session.Metrics();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(session.Refine().ok());
  auto after = session.Metrics();
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->phi, before->phi - 1e-9);
}

TEST(PartitioningSessionTest, SnapshotRestoreRoundTripsExactState) {
  const GeneratedGraph g = SmallWorld();
  TempPath snapshot("session_roundtrip.spns");
  PartitioningSession session(SmallConfig(4));
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  ASSERT_TRUE(session.Rescale(6).ok());
  ASSERT_TRUE(session.Snapshot(snapshot.path).ok());

  PartitioningSession restored(SmallConfig(4));
  ASSERT_TRUE(restored.Restore(snapshot.path).ok());
  EXPECT_TRUE(restored.is_open());
  EXPECT_EQ(restored.num_partitions(), 6);
  EXPECT_EQ(restored.num_vertices(), session.num_vertices());
  EXPECT_EQ(restored.edges(), session.edges());
  EXPECT_EQ(restored.assignment(), session.assignment());

  // The restored session continues the lifecycle: further operations see
  // the restored assignment, so a rescale from it matches one from the
  // original session.
  PartitioningSession continued(SmallConfig(4));
  ASSERT_TRUE(continued.Restore(snapshot.path).ok());
  ASSERT_TRUE(continued.Rescale(8).ok());
  ASSERT_TRUE(session.Rescale(8).ok());
  EXPECT_EQ(continued.assignment(), session.assignment());
}

TEST(PartitioningSessionTest, RestoreRejectsGarbageFiles) {
  PartitioningSession session(SmallConfig());
  EXPECT_FALSE(session.Restore("/definitely/not/here.spns").ok());
  EXPECT_FALSE(session.is_open());
}

TEST(PartitioningSessionTest, ObserverSeesEveryIteration) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  std::vector<int> seen;
  ProgressObserver observer;
  observer.on_iteration = [&seen](const IterationPoint& pt) {
    seen.push_back(pt.iteration);
    EXPECT_GE(pt.phi, 0.0);
    EXPECT_LE(pt.phi, 1.0);
    EXPECT_GE(pt.rho, 1.0);
    return true;
  };
  session.SetProgressObserver(observer);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  ASSERT_EQ(static_cast<int>(seen.size()),
            session.last_result().iterations);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(session.last_result().cancelled);
}

TEST(PartitioningSessionTest, ObserverCancellationStopsWithinOneIteration) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig();
  config.max_iterations = 500;
  config.use_halting = false;  // would run all 500 without cancellation
  PartitioningSession session(config);
  int calls = 0;
  ProgressObserver observer;
  observer.on_iteration = [&calls](const IterationPoint&) {
    ++calls;
    return calls < 3;  // cancel on the third iteration
  };
  session.SetProgressObserver(observer);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(session.last_result().iterations, 3);
  EXPECT_TRUE(session.last_result().cancelled);
  EXPECT_FALSE(session.last_result().converged);
  ExpectValidAssignment(session);  // partial result is still complete
}

// --- Sharding: SessionOptions, invariance, owning-shards-only deltas -----

/// Drives one full lifecycle (Open → ApplyDelta → Rescale → Refine) under
/// the given execution shape and returns the assignment after every step.
std::vector<std::vector<PartitionId>> LifecycleAssignments(
    const GeneratedGraph& g, SessionOptions options) {
  PartitioningSession session(SmallConfig(4), options);
  SPINNER_CHECK(session.Open(g.num_vertices, g.edges, g.directed).ok());
  std::vector<std::vector<PartitionId>> out;
  out.push_back(session.assignment());

  GraphDelta delta = RandomEdgeAdditions(g.num_vertices, g.edges, 30, 5);
  delta.AddVertex(6);
  for (int64_t i = 0; i < 6; ++i) {
    delta.AddEdge(g.num_vertices + i, (i * 13) % g.num_vertices);
  }
  SPINNER_CHECK(session.ApplyDelta(delta).ok());
  out.push_back(session.assignment());

  SPINNER_CHECK(session.Rescale(6).ok());
  out.push_back(session.assignment());

  SPINNER_CHECK(session.Refine().ok());
  out.push_back(session.assignment());
  return out;
}

TEST(PartitioningSessionTest, LifecycleIsShardAndThreadCountInvariant) {
  // The issue's acceptance bar: same seed ⇒ identical assignment for
  // S ∈ {1, 2, 7} and 1 vs N threads, through the whole lifecycle.
  const GeneratedGraph g = SmallWorld(31);
  const auto reference =
      LifecycleAssignments(g, SessionOptions{.num_shards = 1,
                                             .num_threads = 1});
  for (const SessionOptions& options :
       {SessionOptions{.num_shards = 2, .num_threads = 1},
        SessionOptions{.num_shards = 7, .num_threads = 4},
        SessionOptions{.num_shards = 0, .num_threads = 0}}) {
    const auto got = LifecycleAssignments(g, options);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t step = 0; step < reference.size(); ++step) {
      EXPECT_EQ(got[step], reference[step])
          << "step " << step << " S=" << options.num_shards
          << " threads=" << options.num_threads;
    }
  }
}

TEST(PartitioningSessionTest, SessionOptionsFixTheStoreShape) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig(),
                              SessionOptions{.num_shards = 3,
                                             .num_threads = 2});
  EXPECT_EQ(session.options().num_shards, 3);
  EXPECT_EQ(session.num_shards(), 0);  // no store before Open
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_EQ(session.num_shards(), 3);
  EXPECT_EQ(session.store().NumVertices(), g.num_vertices);
  // The store's label view is the session's assignment.
  EXPECT_EQ(session.store().labels(), session.assignment());
}

TEST(PartitioningSessionTest, EdgeDeltaRebuildsOnlyOwningShards) {
  // 1100 vertices = 5 blocks of 256; S=3 → shard 0 owns [0, 256).
  auto ws = WattsStrogatz(1100, 3, 0.3, 17);
  ASSERT_TRUE(ws.ok());
  PartitioningSession session(SmallConfig(),
                              SessionOptions{.num_shards = 3});
  ASSERT_TRUE(session.Open(ws->num_vertices, ws->edges, ws->directed).ok());
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(session.store().rebuild_count(s), 1);
  }

  // An edge change entirely within shard 0 must not re-slice shards 1-2.
  GraphDelta delta;
  delta.AddEdge(2, 9);
  ASSERT_TRUE(session.ApplyDelta(delta).ok());
  EXPECT_EQ(session.store().rebuild_count(0), 2);
  EXPECT_EQ(session.store().rebuild_count(1), 1);
  EXPECT_EQ(session.store().rebuild_count(2), 1);

  // Growing the vertex range moves the block-aligned boundaries: full
  // re-slice.
  GraphDelta grow;
  grow.AddVertex(4).AddEdge(ws->num_vertices, 3);
  ASSERT_TRUE(session.ApplyDelta(grow).ok());
  EXPECT_EQ(session.store().NumVertices(), ws->num_vertices + 4);
  EXPECT_EQ(session.store().rebuild_count(0), 1);  // fresh store
}

TEST(PartitioningSessionTest, SnapshotRestoreRoundTripsAcrossShardShapes) {
  // A snapshot written by a single-shard session restores into a
  // many-shard one with the identical assignment and continued lifecycle.
  const GeneratedGraph g = SmallWorld(12);
  TempPath snapshot("session_shards.spns");
  PartitioningSession writer(SmallConfig(4),
                             SessionOptions{.num_shards = 1});
  ASSERT_TRUE(writer.Open(g.num_vertices, g.edges, g.directed).ok());
  ASSERT_TRUE(writer.Snapshot(snapshot.path).ok());

  PartitioningSession reader(SmallConfig(4),
                             SessionOptions{.num_shards = 5,
                                            .num_threads = 2});
  ASSERT_TRUE(reader.Restore(snapshot.path).ok());
  EXPECT_EQ(reader.assignment(), writer.assignment());
  EXPECT_EQ(reader.num_shards(), 5);
  ASSERT_TRUE(reader.Rescale(7).ok());
  ASSERT_TRUE(writer.Rescale(7).ok());
  EXPECT_EQ(reader.assignment(), writer.assignment());
}

TEST(PartitioningSessionTest, CancellationTokenStopsTheRun) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig();
  config.max_iterations = 500;
  config.use_halting = false;
  PartitioningSession session(config);
  CancellationToken token;
  int calls = 0;
  ProgressObserver observer;
  observer.on_iteration = [&calls, &token](const IterationPoint&) {
    if (++calls == 2) token.Cancel();
    return true;  // the callback itself never asks to stop
  };
  observer.cancel = &token;
  session.SetProgressObserver(observer);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  EXPECT_EQ(session.last_result().iterations, 2);
  EXPECT_TRUE(session.last_result().cancelled);
}

// --- Cross-process execution: the same lifecycle over worker processes ---

TEST(MultiProcessSessionTest, LifecycleMatchesInProcessAcrossShapes) {
  // The full Open → ApplyDelta → Rescale → Refine lifecycle must produce
  // identical assignments whether the shards live on a ThreadPool or in
  // forked worker processes, for every {num_shards, num_workers}.
  const GeneratedGraph g = SmallWorld(31);
  const auto reference =
      LifecycleAssignments(g, SessionOptions{.num_shards = 1,
                                             .num_threads = 1});
  for (const int num_shards : {1, 2, 7}) {
    for (const int num_workers : {1, 3}) {
      const SessionOptions options{
          .num_shards = num_shards,
          .execution_mode = ExecutionMode::kMultiProcess,
          .num_workers = num_workers};
      const auto got = LifecycleAssignments(g, options);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t step = 0; step < reference.size(); ++step) {
        EXPECT_EQ(got[step], reference[step])
            << "step " << step << " S=" << num_shards
            << " W=" << num_workers;
      }
    }
  }
}

TEST(MultiProcessSessionTest, FloatHistoriesMatchInProcess) {
  const GeneratedGraph g = SmallWorld(23);
  SpinnerConfig config = SmallConfig();
  config.max_iterations = 8;
  config.use_halting = false;

  PartitioningSession in_process(config, SessionOptions{.num_shards = 3});
  ASSERT_TRUE(
      in_process.Open(g.num_vertices, g.edges, g.directed).ok());
  PartitioningSession multi_process(
      config, SessionOptions{.num_shards = 3,
                             .execution_mode = ExecutionMode::kMultiProcess,
                             .num_workers = 2});
  ASSERT_TRUE(
      multi_process.Open(g.num_vertices, g.edges, g.directed).ok());

  const auto& a = in_process.last_result().history;
  const auto& b = multi_process.last_result().history;
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].score, b[i].score) << i;
    EXPECT_EQ(a[i].phi, b[i].phi) << i;
    EXPECT_EQ(a[i].rho, b[i].rho) << i;
    EXPECT_EQ(a[i].loads, b[i].loads) << i;
  }
  EXPECT_EQ(in_process.assignment(), multi_process.assignment());
}

TEST(MultiProcessSessionTest, WirePayloadKnobStreamsAndMatchesInProcess) {
  // Forcing a tiny frame payload through SessionOptions chunks every big
  // transfer (Setup slices, snapshot upload) without changing results.
  const GeneratedGraph g = SmallWorld(23);
  SpinnerConfig config = SmallConfig();
  config.max_iterations = 6;
  config.use_halting = false;

  PartitioningSession in_process(config, SessionOptions{.num_shards = 3});
  ASSERT_TRUE(in_process.Open(g.num_vertices, g.edges, g.directed).ok());
  PartitioningSession chunked(
      config, SessionOptions{.num_shards = 3,
                             .execution_mode = ExecutionMode::kMultiProcess,
                             .num_workers = 2,
                             .wire_max_payload = 256});
  ASSERT_TRUE(chunked.Open(g.num_vertices, g.edges, g.directed).ok());

  EXPECT_EQ(in_process.assignment(), chunked.assignment());
  // The knob reached the transport: multi-frame messages were needed and
  // the traffic report surfaces through the session's last result.
  EXPECT_GT(chunked.last_result().wire.chunked_messages, 0);
  EXPECT_GT(chunked.last_result().wire.bytes_sent, 0);
  EXPECT_EQ(in_process.last_result().wire.bytes_sent, 0);
}

TEST(MultiProcessSessionTest, ExecutionModeIsIntrospectableAndConfigDriven) {
  PartitioningSession defaulted(SmallConfig());
  EXPECT_EQ(defaulted.execution_mode(), ExecutionMode::kInProcess);

  // num_workers is documented as ignored in-process: it must not flip an
  // explicitly-in-process session into forking workers.
  PartitioningSession workers_only(
      SmallConfig(), SessionOptions{.num_workers = 2});
  EXPECT_EQ(workers_only.execution_mode(), ExecutionMode::kInProcess);

  PartitioningSession by_options(
      SmallConfig(),
      SessionOptions{.execution_mode = ExecutionMode::kMultiProcess});
  EXPECT_EQ(by_options.execution_mode(), ExecutionMode::kMultiProcess);

  // A config-driven process count selects multi-process execution too
  // (the path partition_tool --processes takes).
  SpinnerConfig config = SmallConfig();
  config.num_processes = 2;
  PartitioningSession by_config(config);
  EXPECT_EQ(by_config.execution_mode(), ExecutionMode::kMultiProcess);

  const GeneratedGraph g = SmallWorld();
  ASSERT_TRUE(by_config.Open(g.num_vertices, g.edges, g.directed).ok());
  ExpectValidAssignment(by_config);
}

}  // namespace
}  // namespace spinner
