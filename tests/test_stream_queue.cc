// EventQueue: the bounded MPSC edge-event queue behind IngestionService —
// FIFO semantics, backpressure (blocking, try, timed enqueue), close
// semantics, and multi-producer interleavings. The blocking tests here are
// what the TSan CI lane chews on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "stream/event_queue.h"

namespace spinner::stream {
namespace {

using std::chrono::milliseconds;

TEST(EventQueueTest, FifoOrderAndDrainAll) {
  EventQueue queue(8);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1, /*timestamp=*/10)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::RemoveEdge(1, 2, /*timestamp=*/20)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddVertices(3, /*timestamp=*/30)));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.oldest_timestamp_micros(), 10);

  std::vector<EdgeEvent> out;
  ASSERT_TRUE(queue.DequeueAll(&out, milliseconds(100)));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, EdgeEvent::Kind::kAddEdge);
  EXPECT_EQ(out[0].src, 0);
  EXPECT_EQ(out[0].dst, 1);
  EXPECT_EQ(out[1].kind, EdgeEvent::Kind::kRemoveEdge);
  EXPECT_EQ(out[2].kind, EdgeEvent::Kind::kAddVertices);
  EXPECT_EQ(out[2].count, 3);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.oldest_timestamp_micros(), -1);
}

TEST(EventQueueTest, TryEnqueueFailsOnlyWhenFull) {
  EventQueue queue(2);
  EXPECT_TRUE(queue.TryEnqueue(EdgeEvent::AddEdge(0, 1)));
  EXPECT_TRUE(queue.TryEnqueue(EdgeEvent::AddEdge(1, 2)));
  EXPECT_FALSE(queue.TryEnqueue(EdgeEvent::AddEdge(2, 3)));

  std::vector<EdgeEvent> out;
  ASSERT_TRUE(queue.DequeueAll(&out, milliseconds(0)));
  EXPECT_TRUE(queue.TryEnqueue(EdgeEvent::AddEdge(2, 3)));
}

TEST(EventQueueTest, EnqueueForTimesOutOnAFullQueue) {
  EventQueue queue(1);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1)));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.EnqueueFor(EdgeEvent::AddEdge(1, 2), milliseconds(20)));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, milliseconds(15));  // actually waited, minus jitter
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, EnqueueForSucceedsWhenSpaceOpensUp) {
  EventQueue queue(1);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1)));
  std::thread drainer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    std::vector<EdgeEvent> out;
    queue.DequeueAll(&out, milliseconds(0));
  });
  EXPECT_TRUE(
      queue.EnqueueFor(EdgeEvent::AddEdge(1, 2), std::chrono::seconds(10)));
  drainer.join();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, ProducerBlocksAtCapacityUntilConsumerDrains) {
  EventQueue queue(2);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(1, 2)));

  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    queue.Enqueue(EdgeEvent::AddEdge(2, 3));  // must block: queue is full
    enqueued.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(enqueued.load());  // still stuck behind backpressure

  std::vector<EdgeEvent> out;
  ASSERT_TRUE(queue.DequeueAll(&out, milliseconds(100)));
  producer.join();
  EXPECT_TRUE(enqueued.load());
  EXPECT_EQ(queue.size(), 1u);  // the unblocked producer's event
}

TEST(EventQueueTest, CloseWakesBlockedProducersWithFailure) {
  EventQueue queue(1);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1)));
  std::atomic<bool> accepted{true};
  std::thread producer(
      [&] { accepted.store(queue.Enqueue(EdgeEvent::AddEdge(1, 2))); });
  std::this_thread::sleep_for(milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_FALSE(accepted.load());
  EXPECT_FALSE(queue.Enqueue(EdgeEvent::AddEdge(2, 3)));
  EXPECT_FALSE(queue.TryEnqueue(EdgeEvent::AddEdge(2, 3)));
  EXPECT_FALSE(queue.EnqueueFor(EdgeEvent::AddEdge(2, 3), milliseconds(1)));
}

TEST(EventQueueTest, CloseStillDrainsBufferedEventsThenSignalsDone) {
  EventQueue queue(8);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(1, 2)));
  queue.Close();

  std::vector<EdgeEvent> out;
  // First drain returns the buffered events; the queue is closed but not
  // yet fully consumed.
  ASSERT_TRUE(queue.DequeueAll(&out, milliseconds(0)));
  EXPECT_EQ(out.size(), 2u);
  // Now closed *and* empty: the consumer-termination signal.
  out.clear();
  EXPECT_FALSE(queue.DequeueAll(&out, milliseconds(0)));
  EXPECT_TRUE(out.empty());
}

TEST(EventQueueTest, DequeueAllTimesOutEmptyOnAnIdleQueue) {
  EventQueue queue(4);
  std::vector<EdgeEvent> out;
  EXPECT_TRUE(queue.DequeueAll(&out, milliseconds(5)));  // open, just idle
  EXPECT_TRUE(out.empty());
}

TEST(EventQueueTest, TracksHighWaterMarkAndTotals) {
  EventQueue queue(4);
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(0, 1)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(1, 2)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(2, 3)));
  std::vector<EdgeEvent> out;
  ASSERT_TRUE(queue.DequeueAll(&out, milliseconds(0)));
  ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(3, 4)));
  EXPECT_EQ(queue.high_water_mark(), 3u);
  EXPECT_EQ(queue.total_enqueued(), 4);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, MultiProducerEventsAllArriveInPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  EventQueue queue(16);  // far smaller than the stream: forces contention

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // src tags the producer, dst the per-producer sequence number.
        ASSERT_TRUE(queue.Enqueue(EdgeEvent::AddEdge(p, i)));
      }
    });
  }

  std::vector<EdgeEvent> all;
  std::thread consumer([&] {
    std::vector<EdgeEvent> batch;
    while (queue.DequeueAll(&batch, milliseconds(50))) {
      all.insert(all.end(), batch.begin(), batch.end());
      batch.clear();
    }
    all.insert(all.end(), batch.begin(), batch.end());
  });

  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();

  ASSERT_EQ(all.size(), static_cast<size_t>(kProducers * kPerProducer));
  // The interleaving is arbitrary, but each producer's events must appear
  // in submission order — the queue never reorders within a producer.
  std::vector<VertexId> next_seq(kProducers, 0);
  for (const EdgeEvent& event : all) {
    ASSERT_GE(event.src, 0);
    ASSERT_LT(event.src, kProducers);
    EXPECT_EQ(event.dst, next_seq[static_cast<size_t>(event.src)]);
    ++next_seq[static_cast<size_t>(event.src)];
  }
  EXPECT_EQ(queue.total_enqueued(), kProducers * kPerProducer);
  EXPECT_LE(queue.high_water_mark(), 16u);
}

}  // namespace
}  // namespace spinner::stream
