#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace spinner {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 0}, {5, 3}};
  const std::string path = TempPath("edges_roundtrip.txt");
  ASSERT_TRUE(graph_io::WriteEdgeList(path, edges).ok());
  auto read = graph_io::ReadEdgeList(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, edges);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ReadSkipsCommentsAndBlankLines) {
  const std::string path = TempPath("edges_comments.txt");
  WriteFile(path, "# SNAP-style header\n% matrix-market comment\n\n0 1\n\n1 2\n");
  auto read = graph_io::ReadEdgeList(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (EdgeList{{0, 1}, {1, 2}}));
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ReadAcceptsTabsAndExtraColumns) {
  const std::string path = TempPath("edges_tabs.txt");
  WriteFile(path, "0\t1\n1\t2\t99\n");  // third column (weight) ignored
  auto read = graph_io::ReadEdgeList(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, (EdgeList{{0, 1}, {1, 2}}));
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ReadMissingFileIsIOError) {
  auto read = graph_io::ReadEdgeList("/nonexistent/path/nope.txt");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(GraphIoTest, ReadMalformedLineNamesLineNumber) {
  const std::string path = TempPath("edges_bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  auto read = graph_io::ReadEdgeList(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ReadRejectsNegativeIds) {
  const std::string path = TempPath("edges_neg.txt");
  WriteFile(path, "0 -1\n");
  EXPECT_FALSE(graph_io::ReadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, WriteToUnwritablePathIsIOError) {
  EXPECT_EQ(graph_io::WriteEdgeList("/nonexistent/dir/out.txt", {}).code(),
            StatusCode::kIOError);
}

TEST_F(GraphIoTest, PartitioningRoundTrip) {
  const std::vector<PartitionId> assignment = {2, 0, 1, 1, 0};
  const std::string path = TempPath("parts_roundtrip.txt");
  ASSERT_TRUE(graph_io::WritePartitioning(path, assignment).ok());
  auto read = graph_io::ReadPartitioning(path, 5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, assignment);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, PartitioningMissingVertexFails) {
  const std::string path = TempPath("parts_missing.txt");
  WriteFile(path, "0 1\n2 0\n");  // vertex 1 absent
  auto read = graph_io::ReadPartitioning(path, 3);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, PartitioningDuplicateVertexFails) {
  const std::string path = TempPath("parts_dup.txt");
  WriteFile(path, "0 1\n0 2\n1 0\n");
  EXPECT_FALSE(graph_io::ReadPartitioning(path, 2).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, PartitioningOutOfRangeVertexFails) {
  const std::string path = TempPath("parts_oor.txt");
  WriteFile(path, "0 1\n7 0\n");
  auto read = graph_io::ReadPartitioning(path, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, PartitioningNegativeLabelFails) {
  const std::string path = TempPath("parts_neg.txt");
  WriteFile(path, "0 -3\n1 0\n");
  EXPECT_FALSE(graph_io::ReadPartitioning(path, 2).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spinner
