// The cross-process execution mode (src/dist): wire-format round trips and
// failure paths (truncated/oversized frames rejected, worker crash
// surfaces a Status, never a hang), and the central guarantee — for a
// fixed seed, RunMultiProcessSpinner is bit-identical to the in-process
// substrate (assignments AND float φ/ρ/score histories) for every tested
// {num_shards, num_workers} combination.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "dist/coordinator.h"
#include "dist/transport.h"
#include "dist/wire_format.h"
#include "graph/binary_io.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "graph/sharded_store.h"
#include "spinner/sharded_program.h"

namespace spinner {
namespace {

using dist::Frame;
using dist::MessageType;
using dist::MultiProcessOptions;

CsrGraph SmallWorldConverted(int64_t n, uint64_t seed = 11) {
  auto ws = WattsStrogatz(n, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

// --- Wire format ---------------------------------------------------------

TEST(WireFormatTest, ShardSliceRoundTripsThroughBinaryIo) {
  const CsrGraph g = SmallWorldConverted(600);
  auto store = ShardedGraphStore::Build(g, 3);
  ASSERT_TRUE(store.ok());
  for (int s = 0; s < store->num_shards(); ++s) {
    std::vector<uint8_t> bytes;
    graph_io::AppendShardSlice(store->shard(s), &bytes);
    size_t consumed = 0;
    auto decoded = graph_io::DecodeShardSlice(bytes, &consumed);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded->begin, store->shard(s).begin);
    EXPECT_EQ(decoded->end, store->shard(s).end);
    EXPECT_EQ(decoded->offsets, store->shard(s).offsets);
    EXPECT_EQ(decoded->targets, store->shard(s).targets);
    EXPECT_EQ(decoded->weights, store->shard(s).weights);
    EXPECT_EQ(decoded->weighted_degree, store->shard(s).weighted_degree);
  }
}

TEST(WireFormatTest, ShardSliceRejectsTruncationAndBadMagic) {
  const CsrGraph g = SmallWorldConverted(400);
  auto store = ShardedGraphStore::Build(g, 1);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> bytes;
  graph_io::AppendShardSlice(store->shard(0), &bytes);

  // Every proper prefix fails cleanly (spot-check a spread of cut points).
  for (const size_t cut : {size_t{0}, size_t{3}, size_t{9}, size_t{25},
                           bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    size_t consumed = 0;
    EXPECT_FALSE(graph_io::DecodeShardSlice(truncated, &consumed).ok())
        << "cut=" << cut;
  }
  std::vector<uint8_t> corrupt = bytes;
  corrupt[0] = 'X';
  size_t consumed = 0;
  auto decoded = graph_io::DecodeShardSlice(corrupt, &consumed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, SetupMessageRoundTrips) {
  const CsrGraph g = SmallWorldConverted(700);
  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  dist::SetupMessage setup;
  setup.num_partitions = 9;
  setup.seed = 1234;
  setup.balance_on_vertices = 1;
  setup.per_worker_async = 0;
  setup.num_vertices = g.NumVertices();
  setup.num_shards_total = 4;
  setup.owned_shards = {1, 2};
  setup.shards = {store->shard(1), store->shard(2)};
  setup.fail_after_score_steps = 5;

  auto decoded = dist::SetupMessage::Decode(setup.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_partitions, 9);
  EXPECT_EQ(decoded->seed, 1234u);
  EXPECT_EQ(decoded->num_vertices, g.NumVertices());
  EXPECT_EQ(decoded->owned_shards, setup.owned_shards);
  EXPECT_EQ(decoded->fail_after_score_steps, 5);
  ASSERT_EQ(decoded->shards.size(), 2u);
  EXPECT_EQ(decoded->shards[0].targets, store->shard(1).targets);
  EXPECT_EQ(decoded->shards[1].offsets, store->shard(2).offsets);
  const SpinnerConfig config = decoded->ToConfig();
  EXPECT_EQ(config.balance_mode, BalanceMode::kVertices);
  EXPECT_FALSE(config.per_worker_async);
}

TEST(WireFormatTest, RunMessagesRoundTrip) {
  dist::ScoresRequest scores;
  scores.superstep = 17;
  scores.global_loads = {5, 6, 7};
  scores.capacities = {1.5, 2.5, 3.5};
  auto scores2 = dist::ScoresRequest::Decode(scores.Encode());
  ASSERT_TRUE(scores2.ok());
  EXPECT_EQ(scores2->superstep, 17);
  EXPECT_EQ(scores2->global_loads, scores.global_loads);
  EXPECT_EQ(scores2->capacities, scores.capacities);

  dist::MigrateReply reply;
  dist::ShardMigrateResult r;
  r.shard = 3;
  r.moves = {{10, 1}, {12, 0}};
  r.loads = {4, 4};
  r.migrated = 2;
  r.messages = 11;
  reply.shards.push_back(r);
  auto reply2 = dist::MigrateReply::Decode(reply.Encode());
  ASSERT_TRUE(reply2.ok());
  ASSERT_EQ(reply2->shards.size(), 1u);
  EXPECT_EQ(reply2->shards[0].moves, r.moves);
  EXPECT_EQ(reply2->shards[0].loads, r.loads);
  EXPECT_EQ(reply2->shards[0].migrated, 2);

  dist::ErrorMessage error =
      dist::ErrorMessage::FromStatus(Status::InvalidArgument("boom"));
  auto error2 = dist::ErrorMessage::Decode(error.Encode());
  ASSERT_TRUE(error2.ok());
  EXPECT_EQ(error2->ToStatus(),
            Status::InvalidArgument("boom"));
}

TEST(WireFormatTest, DecodersRejectTruncatedPayloads) {
  dist::ScoresRequest scores;
  scores.superstep = 1;
  scores.global_loads = {1, 2, 3, 4};
  scores.capacities = {0.5};
  const std::vector<uint8_t> bytes = scores.Encode();
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(dist::ScoresRequest::Decode(truncated).ok())
        << "cut=" << cut;
  }
  // A vector count pointing past the payload must be rejected before any
  // allocation (no OOM on corrupt counts).
  std::vector<uint8_t> corrupt = bytes;
  corrupt[8] = 0xff;  // global_loads count low byte
  corrupt[9] = 0xff;
  EXPECT_FALSE(dist::ScoresRequest::Decode(corrupt).ok());
}

TEST(WireFormatTest, ChecksumDetectsLabelDivergence) {
  std::vector<PartitionId> a = {0, 1, 2, 3, 4};
  std::vector<PartitionId> b = a;
  EXPECT_EQ(dist::ChecksumLabels(a), dist::ChecksumLabels(b));
  b[3] = 0;
  EXPECT_NE(dist::ChecksumLabels(a), dist::ChecksumLabels(b));
}

// --- Transport -----------------------------------------------------------

TEST(TransportTest, FramesRoundTripOverSocketPair) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 251};
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(),
                              static_cast<uint32_t>(MessageType::kLabels),
                              payload)
                  .ok());
  auto frame = dist::RecvFrame(pair->second.fd());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, static_cast<uint32_t>(MessageType::kLabels));
  EXPECT_EQ(frame->payload, payload);

  // Empty payloads are legal (Teardown, Snapshot).
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), 7, {}).ok());
  auto empty = dist::RecvFrame(pair->second.fd());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->payload.empty());
}

TEST(TransportTest, TruncatedFrameAndClosedPeerAreIOErrors) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  // A partial header followed by close: the reader must not hang and must
  // report a truncation, not garbage.
  const uint8_t partial[6] = {0x53, 0x50, 0x4d, 0x46, 1, 0};
  ASSERT_EQ(::send(pair->first.fd(), partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  pair->first.Close();
  auto frame = dist::RecvFrame(pair->second.fd());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);

  // Clean close with no bytes at all: "peer closed".
  auto pair2 = dist::CreateSocketPair();
  ASSERT_TRUE(pair2.ok());
  pair2->first.Close();
  auto eof = dist::RecvFrame(pair2->second.fd());
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kIOError);
}

TEST(TransportTest, OversizedAndBadMagicFramesAreRejected) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  // Header announcing a payload over the hard limit.
  uint8_t header[16] = {0};
  const uint32_t magic = dist::kFrameMagic;
  const uint32_t type = 5;
  const uint64_t huge = dist::kMaxFramePayload + 1;
  memcpy(header, &magic, 4);
  memcpy(header + 4, &type, 4);
  memcpy(header + 8, &huge, 8);
  ASSERT_EQ(::send(pair->first.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  auto oversized = dist::RecvFrame(pair->second.fd());
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kInvalidArgument);

  auto pair2 = dist::CreateSocketPair();
  ASSERT_TRUE(pair2.ok());
  uint8_t bad[16] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_EQ(::send(pair2->first.fd(), bad, sizeof(bad), 0),
            static_cast<ssize_t>(sizeof(bad)));
  auto desync = dist::RecvFrame(pair2->second.fd());
  ASSERT_FALSE(desync.ok());
  EXPECT_EQ(desync.status().code(), StatusCode::kInvalidArgument);
}

// --- Multi-process execution ---------------------------------------------

/// One in-process reference run over a fresh store.
Result<ShardedRunResult> ReferenceRun(const SpinnerConfig& config,
                                      const CsrGraph& g, int num_shards,
                                      std::vector<PartitionId>* labels) {
  auto store = ShardedGraphStore::Build(g, num_shards);
  if (!store.ok()) return store.status();
  ThreadPool pool(2);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = RunShardedSpinner(config, &*store, no_labels, &pool, nullptr);
  if (run.ok()) *labels = store->labels();
  return run;
}

TEST(MultiProcessSpinnerTest, BitIdenticalToInProcessAcrossShapes) {
  const CsrGraph g = SmallWorldConverted(1100, 21);
  SpinnerConfig config;
  config.num_partitions = 6;
  config.seed = 7;
  config.max_iterations = 10;
  config.use_halting = false;

  for (const int num_shards : {1, 2, 7}) {
    std::vector<PartitionId> reference_labels;
    auto reference =
        ReferenceRun(config, g, num_shards, &reference_labels);
    ASSERT_TRUE(reference.ok());
    for (const int num_workers : {1, 3}) {
      auto store = ShardedGraphStore::Build(g, num_shards);
      ASSERT_TRUE(store.ok());
      MultiProcessOptions options;
      options.num_workers = num_workers;
      std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
      auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                              options, nullptr);
      ASSERT_TRUE(run.ok())
          << "S=" << num_shards << " W=" << num_workers << ": "
          << run.status();
      EXPECT_EQ(store->labels(), reference_labels)
          << "S=" << num_shards << " W=" << num_workers;
      EXPECT_EQ(run->iterations, reference->iterations);
      EXPECT_EQ(run->converged, reference->converged);
      // The float convergence curves must match bit-for-bit too.
      ASSERT_EQ(run->history.size(), reference->history.size());
      for (size_t i = 0; i < run->history.size(); ++i) {
        EXPECT_EQ(run->history[i].score, reference->history[i].score) << i;
        EXPECT_EQ(run->history[i].phi, reference->history[i].phi) << i;
        EXPECT_EQ(run->history[i].rho, reference->history[i].rho) << i;
        EXPECT_EQ(run->history[i].loads, reference->history[i].loads) << i;
      }
    }
  }
}

TEST(MultiProcessSpinnerTest, MoreWorkersThanShardsIsFine) {
  const CsrGraph g = SmallWorldConverted(500, 5);
  SpinnerConfig config;
  config.num_partitions = 4;
  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 2, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto store = ShardedGraphStore::Build(g, 2);
  ASSERT_TRUE(store.ok());
  MultiProcessOptions options;
  options.num_workers = 5;  // three workers own zero shards
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(store->labels(), reference_labels);
}

TEST(MultiProcessSpinnerTest, StoreLoadsConsistentWithAssignment) {
  const CsrGraph g = SmallWorldConverted(700, 9);
  SpinnerConfig config;
  config.num_partitions = 5;
  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  MultiProcessOptions options;
  options.num_workers = 2;
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<int64_t> expected(5, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    expected[store->labels()[v]] += g.WeightedDegree(v);
  }
  EXPECT_EQ(store->MergedLoads(), expected);
}

TEST(MultiProcessSpinnerTest, ObserverRunsCoordinatorSideAndCanCancel) {
  const CsrGraph g = SmallWorldConverted(600, 13);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.max_iterations = 50;
  config.use_halting = false;
  auto store = ShardedGraphStore::Build(g, 3);
  ASSERT_TRUE(store.ok());
  int iterations_seen = 0;
  ProgressObserver observer;
  observer.on_iteration = [&](const IterationPoint& pt) {
    ++iterations_seen;
    EXPECT_GT(pt.score, -1.0);
    return iterations_seen < 3;  // stop after three iterations
  };
  MultiProcessOptions options;
  options.num_workers = 2;
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, &observer);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->cancelled);
  EXPECT_EQ(iterations_seen, 3);
  EXPECT_EQ(run->iterations, 3);
}

TEST(MultiProcessSpinnerTest, WorkerCrashMidSuperstepSurfacesStatus) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.max_iterations = 20;
  config.use_halting = false;
  for (const int fail_worker : {0, 1}) {
    auto store = ShardedGraphStore::Build(g, 4);
    ASSERT_TRUE(store.ok());
    MultiProcessOptions options;
    options.num_workers = 2;
    options.fail_after_score_steps = 2;  // dies in its 3rd ComputeScores
    options.fail_worker = fail_worker;
    std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
    auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                            options, nullptr);
    ASSERT_FALSE(run.ok()) << "fail_worker=" << fail_worker;
    EXPECT_EQ(run.status().code(), StatusCode::kIOError)
        << run.status();
    // The error names the worker so operators can find the corpse.
    EXPECT_NE(run.status().message().find("died"), std::string::npos)
        << run.status();
  }
}

TEST(MultiProcessSpinnerTest, ResolveNumWorkersHonorsExplicitRequest) {
  EXPECT_EQ(dist::ResolveNumWorkers(3, 8), 3);
  EXPECT_GE(dist::ResolveNumWorkers(0, 8), 1);
  EXPECT_LE(dist::ResolveNumWorkers(0, 8), 8);
  EXPECT_EQ(dist::ResolveNumWorkers(0, 1), 1);
}

// --- Chunked streaming through the full protocol --------------------------

TEST(MultiProcessSpinnerTest, TinyFrameLimitStreamsEveryBigMessage) {
  // With the frame payload forced to 1 KiB, the Setup slice download, the
  // snapshot upload and (on dense-enough graphs) the delta broadcasts all
  // cross the wire in chunks — and the run stays bit-identical.
  const CsrGraph g = SmallWorldConverted(1100, 21);
  SpinnerConfig config;
  config.num_partitions = 6;
  config.seed = 7;
  config.max_iterations = 10;
  config.use_halting = false;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 7, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto store = ShardedGraphStore::Build(g, 7);
  ASSERT_TRUE(store.ok());
  MultiProcessOptions options;
  options.num_workers = 3;
  options.transport.max_frame_payload = 1024;
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(store->labels(), reference_labels);
  ASSERT_EQ(run->history.size(), reference->history.size());
  for (size_t i = 0; i < run->history.size(); ++i) {
    EXPECT_EQ(run->history[i].score, reference->history[i].score) << i;
    EXPECT_EQ(run->history[i].phi, reference->history[i].phi) << i;
    EXPECT_EQ(run->history[i].rho, reference->history[i].rho) << i;
  }
  // The point of the exercise: chunk reassembly actually ran.
  EXPECT_GT(run->wire.chunked_messages, 0);
  EXPECT_GT(run->wire.frames_sent, run->wire.chunked_messages);
}

// --- Boundary subscriptions -----------------------------------------------

/// Two disjoint 256-vertex rings, each exactly one shard (kBlockSize
/// aligned): with S = W = 2 the cross-worker cut is empty.
CsrGraph TwoRingsConverted(bool bridge) {
  EdgeList edges;
  for (int64_t half = 0; half < 2; ++half) {
    const int64_t base = half * 256;
    for (int64_t i = 0; i < 256; ++i) {
      edges.push_back({base + i, base + (i + 1) % 256});
    }
  }
  if (bridge) edges.push_back({255, 256});  // one edge across the cut
  auto converted = BuildSymmetric(512, edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

/// Complete bipartite K_{256,256} across the two shards: every vertex has
/// an out-of-range neighbor, so every vertex is subscribed by the other
/// worker.
CsrGraph BipartiteConverted() {
  EdgeList edges;
  for (int64_t u = 0; u < 256; ++u) {
    for (int64_t v = 256; v < 512; ++v) {
      edges.push_back({u, v});
    }
  }
  auto converted = BuildSymmetric(512, edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

struct SubscriptionRun {
  std::vector<PartitionId> labels;
  ShardedRunResult result;
};

Result<SubscriptionRun> RunTwoWorkerCase(const CsrGraph& g,
                                         const SpinnerConfig& config) {
  auto store = ShardedGraphStore::Build(g, 2);
  if (!store.ok()) return store.status();
  MultiProcessOptions options;
  options.num_workers = 2;
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  if (!run.ok()) return run.status();
  SubscriptionRun out;
  out.labels = store->labels();
  out.result = std::move(run).value();
  return out;
}

TEST(MultiProcessSubscriptionTest, EmptyCutMeansNoLabelTraffic) {
  const CsrGraph g = TwoRingsConverted(/*bridge=*/false);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.seed = 3;
  config.max_iterations = 8;
  config.use_halting = false;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 2, &reference_labels);
  ASSERT_TRUE(reference.ok());
  auto run = RunTwoWorkerCase(g, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->labels, reference_labels);
  ASSERT_EQ(run->result.history.size(), reference->history.size());
  for (size_t i = 0; i < run->result.history.size(); ++i) {
    EXPECT_EQ(run->result.history[i].score, reference->history[i].score);
    EXPECT_EQ(run->result.history[i].phi, reference->history[i].phi);
    EXPECT_EQ(run->result.history[i].rho, reference->history[i].rho);
  }
  // No shard has an out-of-range neighbor: nothing is mirrored, and after
  // Init not a single label value or delta crosses the wire.
  EXPECT_EQ(run->result.wire.subscribed_vertices, 0);
  EXPECT_EQ(run->result.wire.label_values_sent, 0);
  EXPECT_EQ(run->result.wire.delta_entries_sent, 0);
}

TEST(MultiProcessSubscriptionTest, CompleteBipartiteCutSubscribesEveryone) {
  const CsrGraph g = BipartiteConverted();
  SpinnerConfig config;
  config.num_partitions = 4;
  config.seed = 5;
  config.max_iterations = 6;
  config.use_halting = false;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 2, &reference_labels);
  ASSERT_TRUE(reference.ok());
  auto run = RunTwoWorkerCase(g, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->labels, reference_labels);
  ASSERT_EQ(run->result.history.size(), reference->history.size());
  for (size_t i = 0; i < run->result.history.size(); ++i) {
    EXPECT_EQ(run->result.history[i].score, reference->history[i].score);
    EXPECT_EQ(run->result.history[i].phi, reference->history[i].phi);
    EXPECT_EQ(run->result.history[i].rho, reference->history[i].rho);
  }
  // Every vertex is some other worker's boundary: the mirror seed covers
  // the whole graph exactly once.
  EXPECT_EQ(run->result.wire.subscribed_vertices, g.NumVertices());
  EXPECT_EQ(run->result.wire.label_values_sent, g.NumVertices());
}

TEST(MultiProcessSubscriptionTest, LowCutLabelTrafficIsBoundaryBound) {
  // One bridge edge between the rings: exactly two boundary vertices.
  // Label traffic after Init must cover only those — the coordinator's
  // wire counters make the O(V·workers) → O(boundary) change observable.
  const CsrGraph g = TwoRingsConverted(/*bridge=*/true);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.seed = 11;
  config.max_iterations = 8;
  config.use_halting = false;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 2, &reference_labels);
  ASSERT_TRUE(reference.ok());
  auto run = RunTwoWorkerCase(g, config);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->labels, reference_labels);

  const WireTraffic& wire = run->result.wire;
  EXPECT_EQ(wire.subscribed_vertices, 2);
  EXPECT_EQ(wire.label_values_sent, 2);
  // A subscribed vertex can move at most once per iteration.
  EXPECT_LE(wire.delta_entries_sent,
            wire.subscribed_vertices * run->result.iterations);
  // One per-superstep bytes entry per driver superstep, all accounted.
  EXPECT_EQ(wire.per_superstep_bytes.size(),
            run->result.run_stats.per_superstep.size());
  int64_t step_total = 0;
  for (const int64_t bytes : wire.per_superstep_bytes) {
    EXPECT_GT(bytes, 0);
    step_total += bytes;
  }
  EXPECT_LE(step_total, wire.bytes_sent);
}

}  // namespace
}  // namespace spinner
