#include "pregel/aggregators.h"

#include <gtest/gtest.h>

namespace spinner::pregel {
namespace {

TEST(LongSumAggregatorTest, AddMergeReset) {
  LongSumAggregator a;
  a.Add(5);
  a.Add(-2);
  EXPECT_EQ(a.value(), 3);
  LongSumAggregator b;
  b.Add(10);
  a.MergeFrom(b);
  EXPECT_EQ(a.value(), 13);
  a.Reset();
  EXPECT_EQ(a.value(), 0);
}

TEST(DoubleSumAggregatorTest, AddAndMerge) {
  DoubleSumAggregator a;
  a.Add(0.5);
  a.Add(1.25);
  EXPECT_DOUBLE_EQ(a.value(), 1.75);
  auto clone = a.CloneEmpty();
  EXPECT_DOUBLE_EQ(dynamic_cast<DoubleSumAggregator*>(clone.get())->value(),
                   0.0);
}

TEST(DoubleMaxAggregatorTest, TracksMaximum) {
  DoubleMaxAggregator a;
  a.Add(-3.0);
  EXPECT_DOUBLE_EQ(a.value(), -3.0);
  a.Add(7.0);
  a.Add(2.0);
  EXPECT_DOUBLE_EQ(a.value(), 7.0);
  DoubleMaxAggregator b;
  b.Add(100.0);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.value(), 100.0);
}

TEST(VectorSumAggregatorTest, ElementwiseSum) {
  VectorSumAggregator a(3);
  a.Add(0, 5);
  a.Add(2, 7);
  EXPECT_EQ(a.value(0), 5);
  EXPECT_EQ(a.value(1), 0);
  EXPECT_EQ(a.value(2), 7);
  VectorSumAggregator b(3);
  b.Add(0, 1);
  b.Add(1, 2);
  a.MergeFrom(b);
  EXPECT_EQ(a.values(), (std::vector<int64_t>{6, 2, 7}));
}

TEST(VectorSumAggregatorTest, MergeGrowsSmallerTarget) {
  VectorSumAggregator a(1);
  VectorSumAggregator b(3);
  b.Add(2, 9);
  a.MergeFrom(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.value(2), 9);
}

TEST(VectorSumAggregatorTest, ResizeForElasticK) {
  VectorSumAggregator a(2);
  a.Add(1, 4);
  a.Resize(4);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.value(1), 4);
  EXPECT_EQ(a.value(3), 0);
}

TEST(LongBroadcastAggregatorTest, MasterOnlyValue) {
  LongBroadcastAggregator a;
  a.set_value(42);
  LongBroadcastAggregator partial;
  partial.set_value(7);
  a.MergeFrom(partial);   // vertex writes are ignored
  EXPECT_EQ(a.value(), 42);
  a.Reset();              // persists across barriers
  EXPECT_EQ(a.value(), 42);
}

TEST(AggregatorRegistryTest, TwoPhaseShardedMerge) {
  AggregatorRegistry reg;
  reg.Register("sum", std::make_unique<LongSumAggregator>(),
               /*persistent=*/false);
  reg.CreatePartials(3);
  reg.Partial<LongSumAggregator>("sum", 0)->Add(1);
  reg.Partial<LongSumAggregator>("sum", 1)->Add(2);
  reg.Partial<LongSumAggregator>("sum", 2)->Add(4);
  reg.MergePartials();
  EXPECT_EQ(reg.Get<LongSumAggregator>("sum")->value(), 7);
  // Non-persistent: next barrier with empty partials resets to zero.
  reg.MergePartials();
  EXPECT_EQ(reg.Get<LongSumAggregator>("sum")->value(), 0);
}

TEST(AggregatorRegistryTest, PersistentAccumulatesAcrossBarriers) {
  AggregatorRegistry reg;
  reg.Register("loads", std::make_unique<VectorSumAggregator>(2),
               /*persistent=*/true);
  reg.CreatePartials(2);
  reg.Partial<VectorSumAggregator>("loads", 0)->Add(0, 10);
  reg.MergePartials();
  reg.Partial<VectorSumAggregator>("loads", 1)->Add(0, -3);
  reg.Partial<VectorSumAggregator>("loads", 1)->Add(1, 3);
  reg.MergePartials();
  EXPECT_EQ(reg.Get<VectorSumAggregator>("loads")->values(),
            (std::vector<int64_t>{7, 3}));
}

TEST(AggregatorRegistryTest, PartialsResetAfterMerge) {
  AggregatorRegistry reg;
  reg.Register("s", std::make_unique<LongSumAggregator>(), false);
  reg.CreatePartials(1);
  reg.Partial<LongSumAggregator>("s", 0)->Add(5);
  reg.MergePartials();
  EXPECT_EQ(reg.Partial<LongSumAggregator>("s", 0)->value(), 0);
}

TEST(AggregatorRegistryTest, HasReportsRegistration) {
  AggregatorRegistry reg;
  EXPECT_FALSE(reg.Has("x"));
  reg.Register("x", std::make_unique<LongSumAggregator>(), false);
  EXPECT_TRUE(reg.Has("x"));
}

TEST(AggregatorRegistryDeathTest, UnknownNameAborts) {
  AggregatorRegistry reg;
  EXPECT_DEATH(reg.Get<LongSumAggregator>("missing"), "unknown aggregator");
}

TEST(AggregatorRegistryDeathTest, TypeMismatchAborts) {
  AggregatorRegistry reg;
  reg.Register("x", std::make_unique<LongSumAggregator>(), false);
  EXPECT_DEATH(reg.Get<DoubleSumAggregator>("x"), "type mismatch");
}

TEST(AggregatorRegistryDeathTest, DoubleRegistrationAborts) {
  AggregatorRegistry reg;
  reg.Register("x", std::make_unique<LongSumAggregator>(), false);
  EXPECT_DEATH(
      reg.Register("x", std::make_unique<LongSumAggregator>(), false),
      "registered twice");
}

}  // namespace
}  // namespace spinner::pregel
