// Community detection (classic LPA) and triangle counting.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/community_lpa.h"
#include "apps/triangle_count.h"
#include "graph/conversion.h"
#include "graph/generators.h"

namespace spinner::apps {
namespace {

CsrGraph Sym(const GeneratedGraph& g) {
  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

// --- Community LPA --------------------------------------------------------

TEST(CommunityLpaTest, RecoversPlantedBlocks) {
  auto pp = PlantedPartition(4, 40, 0.45, 0.002, 3);
  ASSERT_TRUE(pp.ok());
  CsrGraph g = Sym(*pp);
  auto labels = DetectCommunities(g);

  // Within each planted block, one label should strongly dominate, and
  // dominant labels should differ across blocks.
  std::set<VertexId> dominant_labels;
  for (int block = 0; block < 4; ++block) {
    std::map<VertexId, int> counts;
    for (int i = 0; i < 40; ++i) ++counts[labels[block * 40 + i]];
    auto best = std::max_element(
        counts.begin(), counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    EXPECT_GE(best->second, 30) << "block " << block;  // ≥75% agreement
    dominant_labels.insert(best->first);
  }
  EXPECT_EQ(dominant_labels.size(), 4u);
}

TEST(CommunityLpaTest, DisconnectedComponentsGetDistinctLabels) {
  // Two disjoint triangles.
  auto g = BuildSymmetric(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                              {5, 3}});
  ASSERT_TRUE(g.ok());
  auto labels = DetectCommunities(*g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(CommunityLpaTest, CompleteGraphConvergesToOneLabel) {
  CsrGraph g = Sym(Complete(12));
  auto labels = DetectCommunities(g);
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(labels[v], labels[0]);
}

TEST(CommunityLpaTest, DeterministicAcrossWorkerCounts) {
  auto ws = WattsStrogatz(300, 4, 0.1, 9);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = Sym(*ws);
  EXPECT_EQ(DetectCommunities(g, /*num_workers=*/1),
            DetectCommunities(g, /*num_workers=*/7));
}

// --- Triangle counting ------------------------------------------------------

TEST(TriangleCountTest, KnownShapes) {
  // A single triangle.
  auto tri = BuildSymmetric(3, {{0, 1}, {1, 2}, {2, 0}});
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ(CountTriangles(*tri), 1);

  // A ring of 6 has none.
  CsrGraph ring = Sym(Ring(6));
  EXPECT_EQ(CountTriangles(ring), 0);

  // K5 has C(5,3) = 10.
  CsrGraph k5 = Sym(Complete(5));
  EXPECT_EQ(CountTriangles(k5), 10);

  // A star has none.
  CsrGraph star = Sym(Star(10));
  EXPECT_EQ(CountTriangles(star), 0);
}

TEST(TriangleCountTest, MatchesReferenceOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto er = ErdosRenyi(200, 1500, seed);
    ASSERT_TRUE(er.ok());
    CsrGraph g = Sym(*er);
    EXPECT_EQ(CountTriangles(g), CountTrianglesReference(g))
        << "seed " << seed;
  }
  auto ba = BarabasiAlbert(400, 5, 5, 4);
  ASSERT_TRUE(ba.ok());
  CsrGraph g = Sym(*ba);
  const int64_t reference = CountTrianglesReference(g);
  EXPECT_GT(reference, 0);
  EXPECT_EQ(CountTriangles(g), reference);
}

TEST(TriangleCountTest, WorkerCountInvariant) {
  auto ws = WattsStrogatz(300, 5, 0.2, 6);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = Sym(*ws);
  const int64_t one = CountTriangles(g, 1);
  EXPECT_EQ(one, CountTriangles(g, 6));
  EXPECT_EQ(one, CountTrianglesReference(g));
}

}  // namespace
}  // namespace spinner::apps
