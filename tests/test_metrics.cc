#include "spinner/metrics.h"

#include <gtest/gtest.h>

#include "graph/conversion.h"
#include "graph/generators.h"

namespace spinner {
namespace {

CsrGraph TwoTriangles() {
  // Two triangles {0,1,2} and {3,4,5} joined by the bridge 2-3.
  auto g = BuildSymmetric(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

TEST(MetricsTest, PerfectSplitOfTwoTriangles) {
  CsrGraph g = TwoTriangles();
  const std::vector<PartitionId> split = {0, 0, 0, 1, 1, 1};
  auto m = ComputeMetrics(g, split, 2, 1.05);
  ASSERT_TRUE(m.ok());
  // 7 undirected edges = 14 arc weight; only the bridge (2 arcs) is cut.
  EXPECT_EQ(m->total_weight, 14);
  EXPECT_EQ(m->cut_weight, 2);
  EXPECT_DOUBLE_EQ(m->phi, 12.0 / 14.0);
  // Loads: triangle vertices have degrees {2,2,3} per side = 7 each.
  EXPECT_EQ(m->loads, (std::vector<int64_t>{7, 7}));
  EXPECT_DOUBLE_EQ(m->rho, 1.0);
}

TEST(MetricsTest, AllInOnePartition) {
  CsrGraph g = TwoTriangles();
  const std::vector<PartitionId> one(6, 0);
  auto m = ComputeMetrics(g, one, 2, 1.05);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->phi, 1.0);
  EXPECT_EQ(m->cut_weight, 0);
  EXPECT_DOUBLE_EQ(m->rho, 2.0);  // one partition holds all, ideal is half
}

TEST(MetricsTest, WeightedCut) {
  // Reciprocal pair 0<->1 (weight 2), single edges 1->2 (weight 1).
  auto g = ConvertToWeightedUndirected(3, {{0, 1}, {1, 0}, {1, 2}});
  ASSERT_TRUE(g.ok());
  // Cut the heavy edge.
  const std::vector<PartitionId> a = {0, 1, 1};
  auto ma = ComputeMetrics(*g, a, 2, 1.05);
  ASSERT_TRUE(ma.ok());
  EXPECT_EQ(ma->cut_weight, 4);  // weight-2 edge, both arcs
  // Cut the light edge instead: better phi.
  const std::vector<PartitionId> b = {0, 0, 1};
  auto mb = ComputeMetrics(*g, b, 2, 1.05);
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(mb->cut_weight, 2);
  EXPECT_GT(mb->phi, ma->phi);
}

TEST(MetricsTest, ScoreHigherForBetterPartitioning) {
  CsrGraph g = TwoTriangles();
  const std::vector<PartitionId> good_split = {0, 0, 0, 1, 1, 1};
  const std::vector<PartitionId> bad_split = {0, 1, 0, 1, 0, 1};
  auto good = ComputeMetrics(g, good_split, 2, 1.05);
  auto bad = ComputeMetrics(g, bad_split, 2, 1.05);
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_GT(good->score, bad->score);
}

TEST(MetricsTest, IsolatedVerticesAreNeutral) {
  auto g = BuildSymmetric(4, {{0, 1}});  // vertices 2, 3 isolated
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> labels = {0, 0, 1, 1};
  auto m = ComputeMetrics(*g, labels, 2, 1.05);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->phi, 1.0);
  EXPECT_EQ(m->loads, (std::vector<int64_t>{2, 0}));
}

TEST(MetricsTest, RejectsBadInputs) {
  CsrGraph g = TwoTriangles();
  const std::vector<PartitionId> short_labels = {0, 0, 0};
  const std::vector<PartitionId> bad_label = {0, 0, 0, 1, 1, 7};
  const std::vector<PartitionId> valid = {0, 0, 0, 1, 1, 1};
  EXPECT_FALSE(ComputeMetrics(g, short_labels, 2, 1.05).ok());  // size
  EXPECT_FALSE(ComputeMetrics(g, bad_label, 2, 1.05).ok());  // label range
  EXPECT_FALSE(ComputeMetrics(g, valid, 0, 1.05).ok());      // k
  EXPECT_FALSE(ComputeMetrics(g, valid, 2, 0.0).ok());       // capacity
}

TEST(ComputeLoadsTest, MatchesWeightedDegrees) {
  auto g = ConvertToWeightedUndirected(3, {{0, 1}, {1, 0}, {1, 2}});
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> labels = {0, 1, 0};
  auto loads = ComputeLoads(*g, labels, 2);
  ASSERT_TRUE(loads.ok());
  // deg_w: v0=2, v1=3, v2=1 → loads {3, 3}.
  EXPECT_EQ(*loads, (std::vector<int64_t>{3, 3}));
}

TEST(PartitioningDifferenceTest, CountsChangedVertices) {
  const std::vector<PartitionId> a = {0, 1, 2, 0};
  const std::vector<PartitionId> b = {0, 1, 0, 0};
  auto d = PartitioningDifference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.25);
  auto same = PartitioningDifference(a, a);
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(*same, 0.0);
}

TEST(PartitioningDifferenceTest, SizeMismatchFails) {
  const std::vector<PartitionId> a = {0, 1};
  const std::vector<PartitionId> b = {0};
  EXPECT_FALSE(PartitioningDifference(a, b).ok());
}

TEST(PartitioningDifferenceTest, EmptyIsZero) {
  auto d = PartitioningDifference(std::vector<PartitionId>{},
                                  std::vector<PartitionId>{});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

}  // namespace
}  // namespace spinner
