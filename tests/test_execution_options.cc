// ExecutionOptions: the single nested execution-shape struct shared by
// SpinnerConfig, SessionOptions and PartitionerOptions. These tests pin
// the merge precedence (nested over deprecated flat fields, outer layers
// over inner), the validation rules, and the compile-unmodified shims.
#include <gtest/gtest.h>

#include <string>

#include "baselines/partitioner_interface.h"
#include "baselines/partitioner_registry.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/config.h"
#include "spinner/execution_options.h"
#include "spinner/session.h"

namespace spinner {
namespace {

TEST(ExecutionOptionsTest, MergePrefersEverySetPrimaryField) {
  ExecutionOptions fallback;
  fallback.mode = ExecutionMode::kMultiProcess;
  fallback.num_shards = 8;
  fallback.num_threads = 2;
  fallback.num_workers = 4;
  fallback.wire_max_payload = 4096;
  fallback.listen_address = "127.0.0.1:7001";
  fallback.worker_store_dir = "/tmp/fallback";
  fallback.handshake_timeout_ms = 1000;

  // An all-default primary changes nothing.
  ExecutionOptions merged = MergedExecution(ExecutionOptions{}, fallback);
  EXPECT_EQ(merged.mode, ExecutionMode::kMultiProcess);
  EXPECT_EQ(merged.num_shards, 8);
  EXPECT_EQ(merged.num_threads, 2);
  EXPECT_EQ(merged.num_workers, 4);
  EXPECT_EQ(merged.wire_max_payload, 4096u);
  EXPECT_EQ(merged.listen_address, "127.0.0.1:7001");
  EXPECT_EQ(merged.worker_store_dir, "/tmp/fallback");
  EXPECT_EQ(merged.handshake_timeout_ms, 1000);

  // Set primary fields win; unset ones keep falling through.
  ExecutionOptions primary;
  primary.mode = ExecutionMode::kTcp;
  primary.num_workers = 3;
  primary.listen_address = "127.0.0.1:0";
  merged = MergedExecution(primary, fallback);
  EXPECT_EQ(merged.mode, ExecutionMode::kTcp);
  EXPECT_EQ(merged.num_workers, 3);
  EXPECT_EQ(merged.listen_address, "127.0.0.1:0");
  EXPECT_EQ(merged.num_shards, 8);           // fell through
  EXPECT_EQ(merged.wire_max_payload, 4096u);  // fell through
}

TEST(ExecutionOptionsTest, ValidateCatchesBadShapes) {
  ExecutionOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  ok.mode = ExecutionMode::kMultiProcess;
  EXPECT_TRUE(ok.Validate().ok());  // workers auto-sized

  // kTcp must know the fleet size up front.
  ExecutionOptions tcp;
  tcp.mode = ExecutionMode::kTcp;
  EXPECT_FALSE(tcp.Validate().ok());
  tcp.num_workers = 3;
  EXPECT_TRUE(tcp.Validate().ok());

  ExecutionOptions negatives;
  negatives.num_shards = -1;
  EXPECT_FALSE(negatives.Validate().ok());

  // A frame ceiling below the minimum cannot carry chunk headers.
  ExecutionOptions tiny_frames;
  tiny_frames.wire_max_payload = 63;
  EXPECT_FALSE(tiny_frames.Validate().ok());
  tiny_frames.wire_max_payload = 64;
  EXPECT_TRUE(tiny_frames.Validate().ok());
}

TEST(ExecutionOptionsTest, ValidateRejectsBadRecoveryKnobs) {
  // A zero or negative deadline would mean "hang forever" or "instantly
  // hung" — both rejected rather than interpreted.
  ExecutionOptions no_deadline;
  no_deadline.rpc_timeout_ms = 0;
  EXPECT_FALSE(no_deadline.Validate().ok());
  no_deadline.rpc_timeout_ms = -5;
  EXPECT_FALSE(no_deadline.Validate().ok());
  no_deadline.rpc_timeout_ms = 1;
  EXPECT_TRUE(no_deadline.Validate().ok());

  ExecutionOptions no_heartbeat;
  no_heartbeat.heartbeat_period_ms = 0;
  EXPECT_FALSE(no_heartbeat.Validate().ok());
  no_heartbeat.heartbeat_period_ms = -1;
  EXPECT_FALSE(no_heartbeat.Validate().ok());
  no_heartbeat.heartbeat_period_ms = 10;
  EXPECT_TRUE(no_heartbeat.Validate().ok());

  ExecutionOptions negative_attempts;
  negative_attempts.max_recovery_attempts = -1;
  EXPECT_FALSE(negative_attempts.Validate().ok());
  negative_attempts.max_recovery_attempts = 0;  // recovery off: valid
  EXPECT_TRUE(negative_attempts.Validate().ok());
  negative_attempts.max_recovery_attempts = 3;
  EXPECT_TRUE(negative_attempts.Validate().ok());
}

TEST(ExecutionOptionsTest, MergeCarriesTheRecoveryKnobs) {
  ExecutionOptions fallback;
  fallback.rpc_timeout_ms = 5'000;
  fallback.heartbeat_period_ms = 100;
  fallback.max_recovery_attempts = 4;

  // Defaults in the primary fall through to the fallback's knobs.
  ExecutionOptions merged = MergedExecution(ExecutionOptions{}, fallback);
  EXPECT_EQ(merged.rpc_timeout_ms, 5'000);
  EXPECT_EQ(merged.heartbeat_period_ms, 100);
  EXPECT_EQ(merged.max_recovery_attempts, 4);

  // Explicitly-set primary knobs win.
  ExecutionOptions primary;
  primary.rpc_timeout_ms = 250;
  primary.max_recovery_attempts = 1;
  merged = MergedExecution(primary, fallback);
  EXPECT_EQ(merged.rpc_timeout_ms, 250);
  EXPECT_EQ(merged.heartbeat_period_ms, 100);  // fell through
  EXPECT_EQ(merged.max_recovery_attempts, 1);
}

TEST(ExecutionOptionsTest, ConfigResolvesDeprecatedFlatFields) {
  SpinnerConfig config;
  config.num_shards = 4;
  config.num_threads = 2;
  config.num_processes = 3;
  config.wire_max_payload = 2048;
  const ExecutionOptions resolved = config.ResolvedExecution();
  EXPECT_EQ(resolved.mode, ExecutionMode::kMultiProcess);
  EXPECT_EQ(resolved.num_shards, 4);
  EXPECT_EQ(resolved.num_threads, 2);
  EXPECT_EQ(resolved.num_workers, 3);
  EXPECT_EQ(resolved.wire_max_payload, 2048u);

  // The nested struct wins over the flat fields when both are set.
  config.execution.num_shards = 9;
  config.execution.mode = ExecutionMode::kInProcess;
  // mode's default value cannot be distinguished from "unset", so an
  // explicit in-process choice is expressed by zeroing num_processes.
  EXPECT_EQ(config.ResolvedExecution().num_shards, 9);
}

TEST(ExecutionOptionsTest, SessionMergesAllFourLayers) {
  SpinnerConfig config;
  config.num_partitions = 4;
  config.num_shards = 2;          // config flat (lowest precedence)
  config.execution.num_shards = 3;  // config nested beats config flat

  SessionOptions options;
  options.num_threads = 2;        // session flat beats all config layers
  options.execution.wire_max_payload = 8192;  // session nested: top

  PartitioningSession session(config, options);
  EXPECT_EQ(session.execution().num_shards, 3);
  EXPECT_EQ(session.execution().num_threads, 2);
  EXPECT_EQ(session.execution().wire_max_payload, 8192u);
  EXPECT_EQ(session.execution_mode(), ExecutionMode::kInProcess);

  // Session nested beats session flat.
  SessionOptions shadowed;
  shadowed.num_shards = 5;
  shadowed.execution.num_shards = 7;
  PartitioningSession session2(config, shadowed);
  EXPECT_EQ(session2.execution().num_shards, 7);
}

TEST(ExecutionOptionsTest, TcpAddressRequiresTcpMode) {
  SpinnerConfig config;
  config.num_partitions = 4;
  PartitioningSession session(config);
  auto address = session.TcpAddress();
  ASSERT_FALSE(address.ok());
  EXPECT_EQ(address.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExecutionOptionsTest, TcpSessionBindsAnEphemeralListener) {
  SpinnerConfig config;
  config.num_partitions = 4;
  SessionOptions options;
  options.execution.mode = ExecutionMode::kTcp;
  options.execution.num_workers = 2;
  options.execution.listen_address = "127.0.0.1:0";
  PartitioningSession session(config, options);
  auto address = session.TcpAddress();
  ASSERT_TRUE(address.ok()) << address.status();
  // The ephemeral port resolved to something dialable.
  EXPECT_EQ(address->rfind("127.0.0.1:", 0), 0u) << *address;
  EXPECT_NE(*address, "127.0.0.1:0");
  // Stable across calls — one listener per session.
  auto again = session.TcpAddress();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *address);
}

TEST(ExecutionOptionsTest, PartitionerOptionsFeedTheRegistryFactory) {
  auto ws = WattsStrogatz(400, 3, 0.3, 11);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  PartitionerOptions flat;
  flat.num_shards = 3;
  auto by_flat = PartitionerRegistry::Create("spinner", flat);
  ASSERT_TRUE(by_flat.ok()) << by_flat.status();
  auto labels_flat = (*by_flat)->Partition(*g, 4);
  ASSERT_TRUE(labels_flat.ok()) << labels_flat.status();

  PartitionerOptions nested;
  nested.execution.num_shards = 3;
  auto by_nested = PartitionerRegistry::Create("spinner", nested);
  ASSERT_TRUE(by_nested.ok()) << by_nested.status();
  auto labels_nested = (*by_nested)->Partition(*g, 4);
  ASSERT_TRUE(labels_nested.ok()) << labels_nested.status();

  // Execution shape never changes results — and the two spellings of the
  // same shape are interchangeable.
  EXPECT_EQ(*labels_flat, *labels_nested);
}

}  // namespace
}  // namespace spinner
