// Incremental repartitioning (§III.D): adapting must preserve most of the
// previous assignment (stability), keep quality, and label new vertices.
#include <gtest/gtest.h>

#include "graph/conversion.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

namespace spinner {
namespace {

struct Workload {
  GeneratedGraph base;
  CsrGraph converted;
};

Workload MakeWorkload() {
  auto ws = WattsStrogatz(800, 4, 0.3, 7);
  SPINNER_CHECK(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(g.ok());
  return {std::move(ws).value(), std::move(g).value()};
}

SpinnerConfig BaseConfig() {
  SpinnerConfig config;
  config.num_partitions = 8;
  config.num_workers = 4;
  return config;
}

TEST(SpinnerIncrementalTest, AdaptationIsStableReparitioningIsNot) {
  Workload w = MakeWorkload();
  SpinnerPartitioner partitioner(BaseConfig());
  auto initial = partitioner.Partition(w.converted);
  ASSERT_TRUE(initial.ok());

  // Add 2% new edges.
  auto delta = RandomEdgeAdditions(
      w.base.num_vertices, w.base.edges,
      static_cast<int64_t>(w.base.edges.size()) / 50, 13);
  auto new_edges = ApplyDelta(w.base.num_vertices, w.base.edges, delta);
  ASSERT_TRUE(new_edges.ok());
  auto new_graph = BuildSymmetric(w.base.num_vertices, *new_edges);
  ASSERT_TRUE(new_graph.ok());

  auto adapted = partitioner.Repartition(*new_graph, initial->assignment);
  ASSERT_TRUE(adapted.ok());
  // A re-partitioning from scratch draws a fresh random initialization (in
  // production the seed would differ run to run).
  SpinnerConfig scratch_config = BaseConfig();
  scratch_config.seed = 777;
  SpinnerPartitioner scratch_partitioner(scratch_config);
  auto scratch = scratch_partitioner.Partition(*new_graph);
  ASSERT_TRUE(scratch.ok());

  auto adapted_diff =
      PartitioningDifference(initial->assignment, adapted->assignment);
  auto scratch_diff =
      PartitioningDifference(initial->assignment, scratch->assignment);
  ASSERT_TRUE(adapted_diff.ok() && scratch_diff.ok());

  // Paper Fig. 7b: adaptive moves ~8-11% of vertices, scratch ~95-98%.
  EXPECT_LT(*adapted_diff, 0.45);
  EXPECT_GT(*scratch_diff, 0.70);
  EXPECT_LT(*adapted_diff, *scratch_diff);

  // Quality after adaptation stays comparable to scratch.
  EXPECT_GT(adapted->metrics.phi, scratch->metrics.phi - 0.15);
  EXPECT_LE(adapted->metrics.rho, 1.05 + 0.12);
}

TEST(SpinnerIncrementalTest, AdaptationConvergesFasterThanScratch) {
  Workload w = MakeWorkload();
  SpinnerPartitioner partitioner(BaseConfig());
  auto initial = partitioner.Partition(w.converted);
  ASSERT_TRUE(initial.ok());

  // Tiny change: 0.5% new edges.
  auto delta = RandomEdgeAdditions(
      w.base.num_vertices, w.base.edges,
      static_cast<int64_t>(w.base.edges.size()) / 200, 17);
  auto new_edges = ApplyDelta(w.base.num_vertices, w.base.edges, delta);
  ASSERT_TRUE(new_edges.ok());
  auto new_graph = BuildSymmetric(w.base.num_vertices, *new_edges);
  ASSERT_TRUE(new_graph.ok());

  auto adapted = partitioner.Repartition(*new_graph, initial->assignment);
  auto scratch = partitioner.Partition(*new_graph);
  ASSERT_TRUE(adapted.ok() && scratch.ok());
  // Paper Fig. 7a: adaptation saves most of the work. Messages are the
  // robust proxy (wall time is noisy in CI).
  EXPECT_LT(adapted->run_stats.TotalMessages(),
            scratch->run_stats.TotalMessages());
  EXPECT_LE(adapted->iterations, scratch->iterations);
}

TEST(SpinnerIncrementalTest, NewVerticesAreLabeled) {
  Workload w = MakeWorkload();
  SpinnerPartitioner partitioner(BaseConfig());
  auto initial = partitioner.Partition(w.converted);
  ASSERT_TRUE(initial.ok());

  // Grow the graph by 40 vertices chained to existing ones.
  GraphDelta delta;
  delta.num_new_vertices = 40;
  for (int64_t i = 0; i < 40; ++i) {
    delta.added_edges.push_back({800 + i, i * 17 % 800});
  }
  auto new_edges = ApplyDelta(w.base.num_vertices, w.base.edges, delta);
  ASSERT_TRUE(new_edges.ok());
  auto new_graph = BuildSymmetric(840, *new_edges);
  ASSERT_TRUE(new_graph.ok());

  auto adapted = partitioner.Repartition(*new_graph, initial->assignment);
  ASSERT_TRUE(adapted.ok());
  ASSERT_EQ(adapted->assignment.size(), 840u);
  for (PartitionId l : adapted->assignment) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 8);
  }
}

TEST(SpinnerIncrementalTest, UnchangedGraphBarelyMoves) {
  Workload w = MakeWorkload();
  SpinnerPartitioner partitioner(BaseConfig());
  auto initial = partitioner.Partition(w.converted);
  ASSERT_TRUE(initial.ok());

  auto adapted = partitioner.Repartition(w.converted, initial->assignment);
  ASSERT_TRUE(adapted.ok());
  auto diff =
      PartitioningDifference(initial->assignment, adapted->assignment);
  ASSERT_TRUE(diff.ok());
  // Restarting at a steady state: the halting criterion should fire almost
  // immediately and only slight churn is expected.
  EXPECT_LT(*diff, 0.30);
  EXPECT_LE(adapted->iterations, initial->iterations);
}

TEST(SpinnerIncrementalTest, RejectsInvalidPrevious) {
  Workload w = MakeWorkload();
  SpinnerPartitioner partitioner(BaseConfig());
  std::vector<PartitionId> bad(w.converted.NumVertices(), 0);
  bad[0] = 99;  // outside [0, 8)
  EXPECT_FALSE(partitioner.Repartition(w.converted, bad).ok());
}

}  // namespace
}  // namespace spinner
