#include "graph/delta.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/edge_list.h"

namespace spinner {
namespace {

TEST(ApplyDeltaTest, AddsEdges) {
  const EdgeList base = {{0, 1}};
  GraphDelta delta;
  delta.added_edges = {{1, 2}};
  auto out = ApplyDelta(3, base, delta);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (EdgeList{{0, 1}, {1, 2}}));
}

TEST(ApplyDeltaTest, AddsVerticesAndEdgesToThem) {
  const EdgeList base = {{0, 1}};
  GraphDelta delta;
  delta.num_new_vertices = 2;
  delta.added_edges = {{1, 3}};  // vertex 3 exists only after the delta
  auto out = ApplyDelta(2, base, delta);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(ApplyDeltaTest, RejectsEdgeBeyondGrownRange) {
  GraphDelta delta;
  delta.num_new_vertices = 1;
  delta.added_edges = {{0, 5}};
  EXPECT_FALSE(ApplyDelta(2, {{0, 1}}, delta).ok());
}

TEST(ApplyDeltaTest, RemovesEdges) {
  const EdgeList base = {{0, 1}, {1, 2}, {2, 0}};
  GraphDelta delta;
  delta.removed_edges = {{1, 2}};
  auto out = ApplyDelta(3, base, delta);
  ASSERT_TRUE(out.ok());
  EdgeList got = *out;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (EdgeList{{0, 1}, {2, 0}}));
}

TEST(ApplyDeltaTest, RemovalIsMultisetStyle) {
  const EdgeList base = {{0, 1}, {0, 1}};
  GraphDelta delta;
  delta.removed_edges = {{0, 1}};
  auto out = ApplyDelta(2, base, delta);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);  // one of the two parallel edges survives
}

TEST(ApplyDeltaTest, RemovingAbsentEdgeFails) {
  GraphDelta delta;
  delta.removed_edges = {{1, 0}};
  EXPECT_FALSE(ApplyDelta(2, {{0, 1}}, delta).ok());
}

TEST(ApplyDeltaTest, NegativeNewVerticesFails) {
  GraphDelta delta;
  delta.num_new_vertices = -1;
  EXPECT_FALSE(ApplyDelta(2, {}, delta).ok());
}

TEST(GraphDeltaBuilderTest, BuildersChainAndAccumulate) {
  GraphDelta delta =
      GraphDelta{}.AddVertex(2).AddEdge(0, 2).AddEdge(2, 3).RemoveEdge(0, 1);
  EXPECT_EQ(delta.num_new_vertices, 2);
  EXPECT_EQ(delta.added_edges, (EdgeList{{0, 2}, {2, 3}}));
  EXPECT_EQ(delta.removed_edges, (EdgeList{{0, 1}}));

  delta.AddVertex();  // default: one vertex
  EXPECT_EQ(delta.num_new_vertices, 3);
}

TEST(GraphDeltaBuilderTest, BuiltDeltaAppliesLikeManualDelta) {
  const EdgeList base = {{0, 1}, {1, 2}};
  auto out = ApplyDelta(
      3, base, GraphDelta{}.AddVertex(1).AddEdge(2, 3).RemoveEdge(0, 1));
  ASSERT_TRUE(out.ok());
  EdgeList got = *out;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (EdgeList{{1, 2}, {2, 3}}));
}

// --- Exactness of the failure paths: code and message, not just !ok ------

TEST(ApplyDeltaTest, EdgeOutsideGrownRangeReportsTheRange) {
  // 2 existing + 1 new vertex = ids [0, 3); endpoint 5 is out of range
  // even after growth.
  auto out = ApplyDelta(2, {{0, 1}}, GraphDelta{}.AddVertex(1).AddEdge(0, 5));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("[0,3)"), std::string::npos)
      << out.status();
}

TEST(ApplyDeltaTest, EdgeInsideGrownRangeIsAccepted) {
  // The same endpoint is valid once enough vertices are added: the check
  // must be against the *grown* range, not the old one.
  auto out = ApplyDelta(2, {{0, 1}}, GraphDelta{}.AddVertex(4).AddEdge(0, 5));
  EXPECT_TRUE(out.ok()) << out.status();
}

TEST(ApplyDeltaTest, RemovingAbsentEdgeNamesTheEdge) {
  auto out = ApplyDelta(3, {{0, 1}}, GraphDelta{}.RemoveEdge(1, 2));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("(1,2)"), std::string::npos)
      << out.status();
}

TEST(ApplyDeltaTest, ReversedEdgeDoesNotMatchForRemoval) {
  // Removal matches exactly: (1,0) is not (0,1).
  auto out = ApplyDelta(2, {{0, 1}}, GraphDelta{}.RemoveEdge(1, 0));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApplyDeltaTest, FailedApplyLeavesNoPartialResult) {
  // A delta that removes an existing edge *and* a missing one must fail
  // atomically — the Result carries only the error.
  const EdgeList base = {{0, 1}, {1, 2}};
  auto out = ApplyDelta(
      3, base, GraphDelta{}.RemoveEdge(0, 1).RemoveEdge(2, 0));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// --- Coalesce: the windowing primitive of the ingestion service ----------

TEST(CoalesceTest, DedupesDuplicateAddsKeepingFirstOccurrenceOrder) {
  GraphDelta delta =
      GraphDelta{}.AddEdge(0, 1).AddEdge(2, 3).AddEdge(0, 1).AddEdge(2, 3);
  delta.Coalesce();
  EXPECT_EQ(delta.added_edges, (EdgeList{{0, 1}, {2, 3}}));
  EXPECT_TRUE(delta.removed_edges.empty());
}

TEST(CoalesceTest, CancelsAddThenRemovePair) {
  GraphDelta delta = GraphDelta{}.AddEdge(0, 1).RemoveEdge(0, 1);
  delta.Coalesce();
  EXPECT_TRUE(delta.added_edges.empty());
  EXPECT_TRUE(delta.removed_edges.empty());
}

TEST(CoalesceTest, RemoveWithoutMatchingAddSurvives) {
  GraphDelta delta = GraphDelta{}.AddEdge(0, 1).RemoveEdge(1, 2);
  delta.Coalesce();
  EXPECT_EQ(delta.added_edges, (EdgeList{{0, 1}}));
  EXPECT_EQ(delta.removed_edges, (EdgeList{{1, 2}}));
}

TEST(CoalesceTest, MatchingIsExactNotSymmetric) {
  // (0,1) and (1,0) are distinct edges, mirroring ApplyDelta removal.
  GraphDelta delta = GraphDelta{}.AddEdge(0, 1).RemoveEdge(1, 0);
  delta.Coalesce();
  EXPECT_EQ(delta.added_edges, (EdgeList{{0, 1}}));
  EXPECT_EQ(delta.removed_edges, (EdgeList{{1, 0}}));
}

TEST(CoalesceTest, DedupeRunsBeforeCancellation) {
  // added [e,e] + removed [e,e]: dedupe collapses the adds to one, which
  // cancels one remove; the survivor is a net removal from the base.
  GraphDelta delta =
      GraphDelta{}.AddEdge(0, 1).AddEdge(0, 1).RemoveEdge(0, 1).RemoveEdge(
          0, 1);
  delta.Coalesce();
  EXPECT_TRUE(delta.added_edges.empty());
  EXPECT_EQ(delta.removed_edges, (EdgeList{{0, 1}}));
}

TEST(CoalesceTest, VertexGrowsAreMergedAndPreserved) {
  GraphDelta delta = GraphDelta{}.AddVertex(2).AddVertex(3).AddEdge(0, 1);
  EXPECT_EQ(delta.num_new_vertices, 5);  // builder already merges grows
  delta.Coalesce();
  EXPECT_EQ(delta.num_new_vertices, 5);
  EXPECT_EQ(delta.added_edges, (EdgeList{{0, 1}}));
}

TEST(CoalesceTest, IsChainable) {
  const GraphDelta delta =
      GraphDelta{}.AddEdge(0, 1).RemoveEdge(0, 1).Coalesce().AddVertex(1);
  EXPECT_TRUE(delta.added_edges.empty());
  EXPECT_EQ(delta.num_new_vertices, 1);
}

TEST(CoalesceTest, EmptyDeltaIsANoOp) {
  GraphDelta delta;
  delta.Coalesce();
  EXPECT_EQ(delta.num_new_vertices, 0);
  EXPECT_TRUE(delta.added_edges.empty());
  EXPECT_TRUE(delta.removed_edges.empty());
}

TEST(CoalesceTest, MakesInWindowAddThenRemoveApplicable) {
  // A window that adds (1,2) and removes it again cannot be expressed as
  // one uncoalesced delta: ApplyDelta removes first, and the base never
  // contained (1,2). Coalescing cancels the pair and the window applies.
  const EdgeList base = {{0, 1}};
  GraphDelta window = GraphDelta{}.AddEdge(1, 2).RemoveEdge(1, 2);
  EXPECT_FALSE(ApplyDelta(3, base, window).ok());
  auto out = ApplyDelta(3, base, window.Coalesce());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, base);
}

TEST(CoalesceTest, CoalescedWindowMatchesEventAtATimeApplication) {
  // A realistic window: new edges, a retry-duplicated add, an edge that
  // came and went, a base-edge removal, and a vertex grow. The coalesced
  // single ApplyDelta must land on the same edge multiset as applying the
  // events one at a time.
  const EdgeList base = {{0, 1}, {1, 2}, {2, 3}};
  GraphDelta window = GraphDelta{}
                          .AddVertex(1)
                          .AddEdge(3, 4)
                          .AddEdge(3, 4)   // producer retry
                          .AddEdge(0, 4)
                          .RemoveEdge(0, 4)  // came and went
                          .RemoveEdge(1, 2);  // base removal
  auto coalesced = ApplyDelta(4, base, window.Coalesce());
  ASSERT_TRUE(coalesced.ok()) << coalesced.status();

  // Event-at-a-time equivalent (each event its own delta; retries and the
  // transient edge collapse to the same multiset).
  auto step = ApplyDelta(4, base, GraphDelta{}.AddVertex(1));
  ASSERT_TRUE(step.ok());
  auto step2 = ApplyDelta(5, *step, GraphDelta{}.AddEdge(3, 4));
  ASSERT_TRUE(step2.ok());
  auto step3 = ApplyDelta(5, *step2, GraphDelta{}.AddEdge(0, 4));
  ASSERT_TRUE(step3.ok());
  auto step4 = ApplyDelta(5, *step3, GraphDelta{}.RemoveEdge(0, 4));
  ASSERT_TRUE(step4.ok());
  auto step5 = ApplyDelta(5, *step4, GraphDelta{}.RemoveEdge(1, 2));
  ASSERT_TRUE(step5.ok());

  EdgeList got = *coalesced;
  EdgeList want = *step5;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(RandomEdgeAdditionsTest, CountNoveltyAndDeterminism) {
  const EdgeList existing = {{0, 1}, {1, 2}};
  auto delta = RandomEdgeAdditions(50, existing, 30, 5);
  EXPECT_EQ(delta.added_edges.size(), 30u);

  // No self-loops, nothing already present (in either direction), no dups.
  EdgeList canon = delta.added_edges;
  for (Edge& e : canon) {
    EXPECT_NE(e.src, e.dst);
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  canon.push_back({0, 1});
  canon.push_back({1, 2});
  const size_t before = canon.size();
  SortAndDedup(&canon);
  EXPECT_EQ(canon.size(), before);

  auto again = RandomEdgeAdditions(50, existing, 30, 5);
  EXPECT_EQ(delta.added_edges, again.added_edges);
  auto other = RandomEdgeAdditions(50, existing, 30, 6);
  EXPECT_NE(delta.added_edges, other.added_edges);
}

}  // namespace
}  // namespace spinner
