// ShardedGraphStore: slicing correctness for any shard count, block-aligned
// boundaries, merged views, owning-shard-only updates — and the substrate's
// central guarantee: partitioning results are bit-identical for every
// shard/thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include <vector>

#include "common/threadpool.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "graph/sharded_store.h"
#include "spinner/partitioner.h"
#include "spinner/sharded_program.h"

namespace spinner {
namespace {

CsrGraph SmallWorldConverted(int64_t n, uint64_t seed = 11) {
  auto ws = WattsStrogatz(n, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

void ExpectSlicesMatch(const ShardedGraphStore& store, const CsrGraph& g) {
  ASSERT_EQ(store.NumVertices(), g.NumVertices());
  EXPECT_EQ(store.NumArcs(), g.NumArcs());
  EXPECT_EQ(store.TotalArcWeight(), g.TotalArcWeight());
  int64_t covered = 0;
  VertexId expected_begin = 0;
  for (int s = 0; s < store.num_shards(); ++s) {
    const auto& shard = store.shard(s);
    // Ranges are contiguous, ordered, and block-aligned.
    EXPECT_EQ(shard.begin, expected_begin);
    if (shard.end < g.NumVertices()) {
      EXPECT_EQ(shard.end % ShardedGraphStore::kBlockSize, 0);
    }
    expected_begin = shard.end;
    covered += shard.NumOwnedVertices();
    for (VertexId v = shard.begin; v < shard.end; ++v) {
      ASSERT_EQ(store.ShardOf(v), s) << "v=" << v;
      ASSERT_EQ(shard.WeightedDegreeOf(v), g.WeightedDegree(v));
      const auto got_n = shard.Neighbors(v);
      const auto want_n = g.Neighbors(v);
      ASSERT_EQ(got_n.size(), want_n.size());
      for (size_t j = 0; j < got_n.size(); ++j) {
        ASSERT_EQ(got_n[j], want_n[j]);
        ASSERT_EQ(shard.WeightsOf(v)[j], g.Weights(v)[j]);
      }
    }
  }
  EXPECT_EQ(expected_begin, g.NumVertices());
  EXPECT_EQ(covered, g.NumVertices());
}

TEST(ShardedGraphStoreTest, SingleShardOwnsEverything) {
  const CsrGraph g = SmallWorldConverted(600);
  auto store = ShardedGraphStore::Build(g, 1);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_shards(), 1);
  ExpectSlicesMatch(*store, g);
}

TEST(ShardedGraphStoreTest, SlicesMatchGlobalGraphForVariousShardCounts) {
  const CsrGraph g = SmallWorldConverted(1100);
  for (const int shards : {2, 3, 7}) {
    auto store = ShardedGraphStore::Build(g, shards);
    ASSERT_TRUE(store.ok()) << "S=" << shards;
    EXPECT_EQ(store->num_shards(), shards);
    ExpectSlicesMatch(*store, g);
  }
}

TEST(ShardedGraphStoreTest, MoreShardsThanBlocksLeavesEmptyShards) {
  // 300 vertices = 2 blocks; 7 shards means most own nothing, which must
  // be harmless (and is what keeps results independent of S).
  const CsrGraph g = SmallWorldConverted(300);
  auto store = ShardedGraphStore::Build(g, 7);
  ASSERT_TRUE(store.ok());
  ExpectSlicesMatch(*store, g);
  int nonempty = 0;
  for (int s = 0; s < 7; ++s) {
    if (store->shard(s).NumOwnedVertices() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, store->NumBlocks());
}

TEST(ShardedGraphStoreTest, RejectsInvalidShardCount) {
  const CsrGraph g = SmallWorldConverted(300);
  EXPECT_FALSE(ShardedGraphStore::Build(g, 0).ok());
  EXPECT_FALSE(ShardedGraphStore::Build(g, -2).ok());
}

TEST(ShardedGraphStoreTest, MergedLoadsReducesAcrossShards) {
  const CsrGraph g = SmallWorldConverted(1100);
  auto store = ShardedGraphStore::Build(g, 3);
  ASSERT_TRUE(store.ok());
  store->ResetLoads(4);
  store->mutable_shard(0).loads[1] = 5;
  store->mutable_shard(1).loads[1] = 7;
  store->mutable_shard(2).loads[3] = 2;
  const std::vector<int64_t> merged = store->MergedLoads();
  EXPECT_EQ(merged, (std::vector<int64_t>{0, 12, 0, 2}));
}

TEST(ShardedGraphStoreTest, UpdateRebuildsOnlyOwningShards) {
  auto ws = WattsStrogatz(1100, 3, 0.3, 11);
  ASSERT_TRUE(ws.ok());
  auto before = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(before.ok());
  auto store = ShardedGraphStore::Build(*before, 3);
  ASSERT_TRUE(store.ok());
  for (int s = 0; s < 3; ++s) EXPECT_EQ(store->rebuild_count(s), 1);

  // Add one edge between two vertices of the first shard: only that
  // shard's CSR slice is stale.
  EdgeList new_edges = ws->edges;
  new_edges.push_back({1, 5});
  auto after = BuildSymmetric(ws->num_vertices, new_edges);
  ASSERT_TRUE(after.ok());
  const std::vector<VertexId> dirty = {1, 5};
  ASSERT_TRUE(store->Update(*after, dirty).ok());
  EXPECT_EQ(store->rebuild_count(0), 2);
  EXPECT_EQ(store->rebuild_count(1), 1);
  EXPECT_EQ(store->rebuild_count(2), 1);
  ExpectSlicesMatch(*store, *after);
}

TEST(ShardedGraphStoreTest, UpdateRejectsGrownGraphAndBadVertices) {
  const CsrGraph g = SmallWorldConverted(520);
  auto store = ShardedGraphStore::Build(g, 2);
  ASSERT_TRUE(store.ok());
  const CsrGraph grown = SmallWorldConverted(600);
  EXPECT_FALSE(store->Update(grown, {}).ok());
  EXPECT_FALSE(store->Update(g, std::vector<VertexId>{-1}).ok());
  EXPECT_FALSE(store->Update(g, std::vector<VertexId>{520}).ok());
}

// --- The substrate guarantee: results don't depend on S or threads -------

TEST(ShardedSpinnerTest, AssignmentIsBitIdenticalAcrossShardAndThreadCounts) {
  const CsrGraph g = SmallWorldConverted(1100, 21);
  SpinnerConfig config;
  config.num_partitions = 6;
  config.seed = 7;

  std::vector<PartitionId> reference;
  int reference_iterations = 0;
  const struct {
    int shards;
    int threads;
  } shapes[] = {{1, 1}, {2, 1}, {7, 4}, {3, 8}, {0, 0}};
  for (const auto& shape : shapes) {
    SpinnerConfig run_config = config;
    run_config.num_shards = shape.shards;
    run_config.num_threads = shape.threads;
    SpinnerPartitioner partitioner(run_config);
    auto result = partitioner.Partition(g);
    ASSERT_TRUE(result.ok()) << "S=" << shape.shards;
    if (reference.empty()) {
      reference = result->assignment;
      reference_iterations = result->iterations;
    } else {
      EXPECT_EQ(result->assignment, reference)
          << "S=" << shape.shards << " threads=" << shape.threads;
      EXPECT_EQ(result->iterations, reference_iterations);
    }
  }
}

TEST(ShardedSpinnerTest, HistoryAndScoresAreShardCountInvariant) {
  // Even the floating-point convergence curve must match bit-for-bit:
  // the per-block score reduction never depends on S.
  const CsrGraph g = SmallWorldConverted(900, 3);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.max_iterations = 12;
  config.use_halting = false;

  config.num_shards = 1;
  auto one = SpinnerPartitioner(config).Partition(g);
  config.num_shards = 5;
  config.num_threads = 4;
  auto five = SpinnerPartitioner(config).Partition(g);
  ASSERT_TRUE(one.ok() && five.ok());
  ASSERT_EQ(one->history.size(), five->history.size());
  for (size_t i = 0; i < one->history.size(); ++i) {
    EXPECT_EQ(one->history[i].score, five->history[i].score) << i;
    EXPECT_EQ(one->history[i].phi, five->history[i].phi) << i;
    EXPECT_EQ(one->history[i].rho, five->history[i].rho) << i;
    EXPECT_EQ(one->history[i].loads, five->history[i].loads) << i;
  }
}

TEST(ShardedSpinnerTest, StoreLoadsStayConsistentWithAssignment) {
  const CsrGraph g = SmallWorldConverted(700, 9);
  SpinnerConfig config;
  config.num_partitions = 5;
  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  ThreadPool pool(2);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = RunShardedSpinner(config, &*store, no_labels, &pool,
                               /*observer=*/nullptr);
  ASSERT_TRUE(run.ok());

  // The merged per-shard counters must equal loads recomputed from the
  // final labels.
  std::vector<int64_t> expected(5, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    expected[store->labels()[v]] += g.WeightedDegree(v);
  }
  EXPECT_EQ(store->MergedLoads(), expected);
}

TEST(ShardedSpinnerTest, ResolveHelpersHonorExplicitConfig) {
  SpinnerConfig config;
  config.num_shards = 9;
  config.num_threads = 3;
  EXPECT_EQ(ResolveNumShards(config, 100000), 9);
  EXPECT_EQ(ResolveNumThreads(config, 9), 3);

  config.num_shards = 0;
  config.num_threads = 0;
  config.num_workers = 5;  // legacy knob maps to the shard count
  EXPECT_EQ(ResolveNumShards(config, 100000), 5);
  // Block stealing decouples threads from shards: the default is the
  // hardware concurrency even when it exceeds the shard count.
  EXPECT_GE(ResolveNumThreads(config, 5), 1);
  EXPECT_EQ(ResolveNumThreads(config, 5),
            static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency())));

  config.num_workers = 0;
  // Tiny graphs never get more shards than blocks.
  EXPECT_EQ(ResolveNumShards(config, 10), 1);
}

}  // namespace
}  // namespace spinner
