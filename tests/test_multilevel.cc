// Multilevel (METIS-like) baseline: validity, balance, and its defining
// property — the best locality of all baselines on structured graphs.
#include "baselines/multilevel_partitioner.h"

#include <gtest/gtest.h>

#include "baselines/hash_partitioner.h"
#include "baselines/ldg_partitioner.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/metrics.h"

namespace spinner {
namespace {

CsrGraph Convert(const GeneratedGraph& g) {
  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

TEST(MultilevelTest, ValidAssignment) {
  auto ws = WattsStrogatz(500, 4, 0.3, 3);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = Convert(*ws);
  MultilevelPartitioner ml;
  auto labels = ml.Partition(g, 8);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), 500u);
  for (PartitionId l : *labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 8);
  }
}

TEST(MultilevelTest, NearPerfectOnPlantedCommunities) {
  auto pp = PlantedPartition(4, 64, 0.3, 0.005, 9);
  ASSERT_TRUE(pp.ok());
  CsrGraph g = Convert(*pp);
  MultilevelPartitioner ml;
  auto labels = ml.Partition(g, 4);
  ASSERT_TRUE(labels.ok());
  auto m = ComputeMetrics(g, *labels, 4, 1.05);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->phi, 0.85);
  EXPECT_LE(m->rho, 1.25);
}

TEST(MultilevelTest, BestLocalityAmongBaselinesOnHubGraph) {
  // Table I is measured on Twitter; a hub-heavy BA graph is the stand-in.
  // (On ring-lattice graphs streamed in id order, LDG gets near-optimal
  // contiguous blocks for free — an ordering artifact, not algorithm
  // quality, so this test uses the power-law family.)
  auto ba = BarabasiAlbert(3000, 5, 5, 21);
  ASSERT_TRUE(ba.ok());
  CsrGraph g = Convert(*ba);
  const int k = 8;
  MultilevelPartitioner ml;
  LdgPartitioner ldg;
  HashPartitioner hash;
  auto ml_m = ComputeMetrics(g, *ml.Partition(g, k), k, 1.05);
  auto ldg_m = ComputeMetrics(g, *ldg.Partition(g, k), k, 1.05);
  auto hash_m = ComputeMetrics(g, *hash.Partition(g, k), k, 1.05);
  ASSERT_TRUE(ml_m.ok() && ldg_m.ok() && hash_m.ok());
  // Table I ordering: multilevel > streaming ≫ hash.
  EXPECT_GT(ml_m->phi, ldg_m->phi);
  EXPECT_GT(ml_m->phi, 3.0 * hash_m->phi);
  EXPECT_LE(ml_m->rho, 1.05);
}

TEST(MultilevelTest, BalanceRespectsSlack) {
  auto ba = BarabasiAlbert(800, 5, 5, 21);
  ASSERT_TRUE(ba.ok());
  CsrGraph g = Convert(*ba);
  MultilevelOptions options;
  options.balance = 1.05;
  MultilevelPartitioner ml(options);
  auto labels = ml.Partition(g, 8);
  ASSERT_TRUE(labels.ok());
  auto m = ComputeMetrics(g, *labels, 8, 1.05);
  ASSERT_TRUE(m.ok());
  // Refinement may not fully balance hub-heavy graphs, but it must stay
  // near the slack, not at hash-partitioning levels of imbalance.
  EXPECT_LE(m->rho, 1.35);
}

TEST(MultilevelTest, EdgeCases) {
  auto ring = Ring(10);
  CsrGraph g = Convert(ring);
  MultilevelPartitioner ml;
  // k = 1: everything in partition 0.
  auto one = ml.Partition(g, 1);
  ASSERT_TRUE(one.ok());
  for (PartitionId l : *one) EXPECT_EQ(l, 0);
  // k = n: valid (possibly empty partitions allowed).
  auto many = ml.Partition(g, 10);
  ASSERT_TRUE(many.ok());
  for (PartitionId l : *many) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 10);
  }
  // k < 1 rejected; empty graph fine.
  EXPECT_FALSE(ml.Partition(g, 0).ok());
  auto empty = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(ml.Partition(*empty, 4)->empty());
}

TEST(MultilevelTest, DeterministicForSeed) {
  auto ws = WattsStrogatz(300, 3, 0.3, 5);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = Convert(*ws);
  MultilevelPartitioner a;
  MultilevelPartitioner b;
  auto la = a.Partition(g, 4);
  auto lb = b.Partition(g, 4);
  ASSERT_TRUE(la.ok() && lb.ok());
  EXPECT_EQ(*la, *lb);
}

TEST(MultilevelTest, StarGraphDoesNotLoopForever) {
  // Heavy-edge matching stalls on stars (all edges share the hub); the
  // coarsening loop must bail out rather than loop.
  auto star = Star(200);
  CsrGraph g = Convert(star);
  MultilevelPartitioner ml;
  auto labels = ml.Partition(g, 4);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), 201u);
}

TEST(MultilevelTest, DisconnectedGraphCovered) {
  // Two disjoint rings.
  EdgeList edges;
  for (VertexId v = 0; v < 50; ++v) edges.push_back({v, (v + 1) % 50});
  for (VertexId v = 0; v < 50; ++v) {
    edges.push_back({50 + v, 50 + (v + 1) % 50});
  }
  auto g = BuildSymmetric(100, edges);
  ASSERT_TRUE(g.ok());
  MultilevelPartitioner ml;
  auto labels = ml.Partition(*g, 2);
  ASSERT_TRUE(labels.ok());
  auto m = ComputeMetrics(*g, *labels, 2, 1.05);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->phi, 0.9);  // natural split: one ring per partition
}

}  // namespace
}  // namespace spinner
