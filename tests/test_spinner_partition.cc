// End-to-end partitioning: invariants, quality, determinism, and a
// parameterized property sweep across graph families, k and c (the paper's
// central claims — ρ ≤ c w.h.p., φ far above hash — as properties).
#include <gtest/gtest.h>

#include <set>

#include "baselines/hash_partitioner.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

namespace spinner {
namespace {

CsrGraph MakeConverted(const GeneratedGraph& g) {
  auto converted = g.directed
                       ? ConvertToWeightedUndirected(g.num_vertices, g.edges)
                       : BuildSymmetric(g.num_vertices, g.edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

TEST(SpinnerPartitionTest, AssignsEveryVertexAValidLabel) {
  auto ws = WattsStrogatz(500, 4, 0.3, 1);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeConverted(*ws);
  SpinnerConfig config;
  config.num_partitions = 8;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(static_cast<int64_t>(result->assignment.size()), 500);
  for (PartitionId l : result->assignment) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 8);
  }
  // All partitions should be populated on a graph this size.
  std::set<PartitionId> used(result->assignment.begin(),
                             result->assignment.end());
  EXPECT_EQ(used.size(), 8u);
}

TEST(SpinnerPartitionTest, DeterministicForSeedAndWorkers) {
  auto ws = WattsStrogatz(400, 3, 0.3, 2);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeConverted(*ws);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.num_workers = 3;
  config.seed = 99;
  SpinnerPartitioner partitioner(config);
  auto a = partitioner.Partition(g);
  auto b = partitioner.Partition(g);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->iterations, b->iterations);

  config.seed = 100;
  SpinnerPartitioner other(config);
  auto c = other.Partition(g);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->assignment, c->assignment);
}

TEST(SpinnerPartitionTest, RecoversPlantedCommunities) {
  // 8 dense communities, k=8: Spinner should align partitions with
  // communities and achieve locality far above the random baseline 1/8.
  auto pp = PlantedPartition(8, 40, 0.35, 0.005, 5);
  ASSERT_TRUE(pp.ok());
  CsrGraph g = MakeConverted(*pp);
  SpinnerConfig config;
  config.num_partitions = 8;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.phi, 0.7);
  EXPECT_LE(result->metrics.rho, config.additional_capacity + 0.12);
}

TEST(SpinnerPartitionTest, BeatsHashPartitioningOnLocality) {
  auto ws = WattsStrogatz(1000, 5, 0.2, 3);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeConverted(*ws);
  const int k = 16;

  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto spinner_result = partitioner.Partition(g);
  ASSERT_TRUE(spinner_result.ok());

  HashPartitioner hash;
  auto hash_labels = hash.Partition(g, k);
  ASSERT_TRUE(hash_labels.ok());
  auto hash_metrics = ComputeMetrics(g, *hash_labels, k, 1.05);
  ASSERT_TRUE(hash_metrics.ok());

  // Hash locality ≈ 1/k; Spinner must be at least 3× better here.
  EXPECT_GT(spinner_result->metrics.phi, 3.0 * hash_metrics->phi);
}

TEST(SpinnerPartitionTest, HaltsByConvergenceBeforeCap) {
  auto ws = WattsStrogatz(600, 4, 0.3, 8);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeConverted(*ws);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.num_workers = 4;
  config.max_iterations = 500;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->iterations, 500);
  EXPECT_GE(result->iterations, config.halt_window);
}

TEST(SpinnerPartitionTest, HaltingDisabledRunsExactlyMaxIterations) {
  auto ws = WattsStrogatz(200, 3, 0.3, 8);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeConverted(*ws);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.num_workers = 2;
  config.use_halting = false;
  config.max_iterations = 17;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 17);
}

TEST(SpinnerPartitionTest, SinglePartitionIsTrivial) {
  auto ring = Ring(50);
  CsrGraph g = MakeConverted(ring);
  SpinnerConfig config;
  config.num_partitions = 1;
  config.num_workers = 2;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  for (PartitionId l : result->assignment) EXPECT_EQ(l, 0);
  EXPECT_DOUBLE_EQ(result->metrics.phi, 1.0);
  EXPECT_DOUBLE_EQ(result->metrics.rho, 1.0);
}

TEST(SpinnerPartitionTest, EmptyGraphIsRejected) {
  auto g = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  SpinnerPartitioner partitioner(SpinnerConfig{});
  EXPECT_FALSE(partitioner.Partition(*g).ok());
}

TEST(SpinnerPartitionTest, IsolatedVerticesGetLabels) {
  // 10 ring vertices + 5 isolated ones.
  auto ring = Ring(10);
  auto g = BuildSymmetric(15, ring.edges);
  ASSERT_TRUE(g.ok());
  SpinnerConfig config;
  config.num_partitions = 3;
  config.num_workers = 2;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(*g);
  ASSERT_TRUE(result.ok());
  for (PartitionId l : result->assignment) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

TEST(SpinnerPartitionTest, PartitionDirectedHandlesRawEdgeLists) {
  auto rmat = RMat(9, 6, 0.5, 0.2, 0.2, 21);
  ASSERT_TRUE(rmat.ok());
  SpinnerConfig config;
  config.num_partitions = 8;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.PartitionDirected(rmat->num_vertices,
                                              rmat->edges);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int64_t>(result->assignment.size()),
            rmat->num_vertices);
  EXPECT_GT(result->metrics.phi, 0.2);  // far above hash's 1/8
}

TEST(SpinnerPartitionTest, InEngineConversionReachesSameQuality) {
  auto rmat = RMat(8, 5, 0.5, 0.2, 0.2, 23);
  ASSERT_TRUE(rmat.ok());
  SpinnerConfig config;
  config.num_partitions = 4;
  config.num_workers = 4;
  SpinnerPartitioner offline(config);
  config.in_engine_conversion = true;
  SpinnerPartitioner in_engine(config);
  auto a = offline.PartitionDirected(rmat->num_vertices, rmat->edges);
  auto b = in_engine.PartitionDirected(rmat->num_vertices, rmat->edges);
  ASSERT_TRUE(a.ok() && b.ok());
  // Different random streams (superstep offset), same algorithm: the
  // quality must match closely even though assignments differ.
  EXPECT_NEAR(a->metrics.phi, b->metrics.phi, 0.1);
  EXPECT_NEAR(a->metrics.rho, b->metrics.rho, 0.1);
}

TEST(SpinnerPartitionTest, PerWorkerAsyncAblationStillValid) {
  auto ws = WattsStrogatz(400, 4, 0.3, 4);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeConverted(*ws);
  SpinnerConfig config;
  config.num_partitions = 8;
  config.num_workers = 4;
  config.per_worker_async = false;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->metrics.rho, config.additional_capacity + 0.15);
  EXPECT_GT(result->metrics.phi, 0.3);
}

// --- Property sweep: ρ ≤ c (w.h.p.) and φ ≥ hash across families ---------

struct SweepCase {
  const char* family;
  int k;
  double c;
};

class SpinnerPropertyTest : public ::testing::TestWithParam<SweepCase> {};

GeneratedGraph MakeFamily(const std::string& family) {
  if (family == "ws") {
    auto g = WattsStrogatz(600, 4, 0.3, 42);
    SPINNER_CHECK(g.ok());
    return std::move(g).value();
  }
  if (family == "ba") {
    // Hub-heavy families need n ≫ k·max_degree for ρ ≤ c to be achievable
    // at all (a vertex is atomic); match the paper's n/k regime.
    auto g = BarabasiAlbert(3000, 4, 4, 42);
    SPINNER_CHECK(g.ok());
    return std::move(g).value();
  }
  if (family == "er") {
    auto g = ErdosRenyi(600, 2400, 42);
    SPINNER_CHECK(g.ok());
    return std::move(g).value();
  }
  if (family == "pp") {
    auto g = PlantedPartition(6, 100, 0.15, 0.005, 42);
    SPINNER_CHECK(g.ok());
    return std::move(g).value();
  }
  auto g = RMat(12, 5, 0.5, 0.2, 0.2, 42);  // "rmat"
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

TEST_P(SpinnerPropertyTest, BalanceRespectsCapacityAndLocalityBeatsHash) {
  const SweepCase param = GetParam();
  const GeneratedGraph raw = MakeFamily(param.family);
  const CsrGraph g = MakeConverted(raw);

  SpinnerConfig config;
  config.num_partitions = param.k;
  config.additional_capacity = param.c;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());

  // Every vertex labeled in range.
  for (PartitionId l : result->assignment) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, param.k);
  }
  // ρ ≤ c holds w.h.p. (Proposition 3); allow the small probabilistic
  // overshoot the paper itself observes in Fig. 5a.
  EXPECT_LE(result->metrics.rho, param.c + 0.15)
      << param.family << " k=" << param.k << " c=" << param.c;

  // Locality at least double hash partitioning's.
  HashPartitioner hash;
  auto hash_labels = hash.Partition(g, param.k);
  ASSERT_TRUE(hash_labels.ok());
  auto hash_metrics = ComputeMetrics(g, *hash_labels, param.k, param.c);
  ASSERT_TRUE(hash_metrics.ok());
  EXPECT_GT(result->metrics.phi, 2.0 * hash_metrics->phi)
      << param.family << " k=" << param.k << " c=" << param.c;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndParameters, SpinnerPropertyTest,
    ::testing::Values(SweepCase{"ws", 4, 1.05}, SweepCase{"ws", 16, 1.05},
                      SweepCase{"ws", 8, 1.20}, SweepCase{"ba", 4, 1.05},
                      SweepCase{"ba", 16, 1.10}, SweepCase{"er", 8, 1.05},
                      SweepCase{"pp", 6, 1.05}, SweepCase{"pp", 12, 1.10},
                      SweepCase{"rmat", 8, 1.05},
                      SweepCase{"rmat", 16, 1.20}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.family) + "_k" +
             std::to_string(info.param.k) + "_c" +
             std::to_string(static_cast<int>(info.param.c * 100));
    });

}  // namespace
}  // namespace spinner
