#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace spinner {
namespace {

TEST(SplitMix64Test, DeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Adjacent inputs must differ in many bits (avalanche sanity check).
  const uint64_t diff = SplitMix64(100) ^ SplitMix64(101);
  EXPECT_GE(__builtin_popcountll(diff), 16);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(1, 2, 3), HashCombine(3, 2, 1));
  EXPECT_EQ(HashCombine(7, 9), HashCombine(7, 9));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LE(same, 1);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);  // all 10 values hit in 1000 draws
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(7);
  std::vector<int> counts(4, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[rng.Uniform(4)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 4, draws / 40);  // within 10% of expectation
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(HashUniformTest, DeterministicBoundedUnbiased) {
  EXPECT_EQ(HashUniform(42, 10), HashUniform(42, 10));
  std::vector<int> counts(8, 0);
  for (uint64_t key = 0; key < 8000; ++key) {
    const uint64_t v = HashUniform(key, 8);
    ASSERT_LT(v, 8u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(HashUniformDoubleTest, UnitIntervalAndMean) {
  double sum = 0;
  for (uint64_t key = 0; key < 10000; ++key) {
    const double d = HashUniformDouble(key);
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace spinner
