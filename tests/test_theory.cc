#include "spinner/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

namespace spinner::theory {
namespace {

IterationPoint MakePoint(int iter, std::vector<int64_t> loads) {
  IterationPoint pt;
  pt.iteration = iter;
  pt.loads = std::move(loads);
  return pt;
}

TEST(ImbalanceTrajectoryTest, KnownVectors) {
  std::vector<IterationPoint> history;
  history.push_back(MakePoint(1, {40, 0}));   // even = 20, dev = 20
  history.push_back(MakePoint(2, {30, 10}));  // dev = 10
  history.push_back(MakePoint(3, {20, 20}));  // dev = 0
  auto traj = ImbalanceTrajectory(history);
  ASSERT_EQ(traj.size(), 3u);
  // Normalized by ‖x_0‖∞ = 40.
  EXPECT_DOUBLE_EQ(traj[0], 0.5);
  EXPECT_DOUBLE_EQ(traj[1], 0.25);
  EXPECT_DOUBLE_EQ(traj[2], 0.0);
}

TEST(ImbalanceTrajectoryTest, EmptyInputs) {
  EXPECT_TRUE(ImbalanceTrajectory({}).empty());
  std::vector<IterationPoint> no_loads(3);
  EXPECT_TRUE(ImbalanceTrajectory(no_loads).empty());
}

TEST(FitDecayRateTest, ExactGeometricSequence) {
  std::vector<double> traj;
  for (int t = 0; t < 10; ++t) traj.push_back(std::pow(0.5, t));
  EXPECT_NEAR(FitDecayRate(traj), 0.5, 1e-9);
}

TEST(FitDecayRateTest, StopsAtFirstZero) {
  std::vector<double> traj = {1.0, 0.1, 0.0, 0.5, 0.5};
  const double mu = FitDecayRate(traj);
  EXPECT_NEAR(mu, 0.1, 1e-9);  // only the first two points count
}

TEST(FitDecayRateTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitDecayRate({}), 1.0);
  EXPECT_DOUBLE_EQ(FitDecayRate({0.5}), 1.0);
  EXPECT_DOUBLE_EQ(FitDecayRate({0.0, 0.0}), 1.0);
}

TEST(CountCapacityViolationsTest, CountsAndWorstRatio) {
  std::vector<IterationPoint> history;
  // total = 100, k = 2, capacity at c=1.05 is 52.5.
  history.push_back(MakePoint(1, {60, 40}));  // 60 > 52.5: violation
  history.push_back(MakePoint(2, {52, 48}));  // fine
  auto stats = CountCapacityViolations(history, 1.05);
  EXPECT_EQ(stats.observations, 4);
  EXPECT_EQ(stats.violations, 1);
  EXPECT_NEAR(stats.worst_ratio, 60.0 / 52.5, 1e-12);
  EXPECT_NEAR(stats.ViolationRate(), 0.25, 1e-12);
}

TEST(TheoryIntegrationTest, SpinnerRunDecaysImbalanceExponentially) {
  // Proposition 1's regime: a well-connected graph where every partition
  // exchanges load with every other. Start from a heavily skewed state
  // (half the vertices piled on one partition — a uniform random start is
  // already balanced and shows nothing) and verify the imbalance decays
  // at a sub-unit fitted rate.
  auto er = ErdosRenyi(4000, 40000, 3);
  ASSERT_TRUE(er.ok());
  auto g = BuildSymmetric(er->num_vertices, er->edges);
  ASSERT_TRUE(g.ok());

  const int k = 16;
  std::vector<PartitionId> skewed(g->NumVertices());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    const uint64_t key = HashCombine(99, static_cast<uint64_t>(v));
    skewed[v] = HashUniformDouble(key) < 0.5
                    ? k - 1
                    : static_cast<PartitionId>(
                          HashUniform(SplitMix64(key), k));
  }

  SpinnerConfig config;
  config.num_partitions = k;
  config.use_halting = false;
  config.max_iterations = 25;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Repartition(*g, skewed);
  ASSERT_TRUE(result.ok());

  auto traj = ImbalanceTrajectory(result->history);
  ASSERT_EQ(traj.size(), 25u);
  EXPECT_LT(traj.back(), 0.5 * traj.front());
  const double mu = FitDecayRate(traj);
  EXPECT_LT(mu, 0.9);  // genuinely exponential, not flat
  EXPECT_GT(mu, 0.0);

  // Proposition 3: violations of the capacity are rare and small, once
  // the deliberately overfull start has drained (skip early iterations).
  std::vector<IterationPoint> tail(result->history.begin() + 10,
                                   result->history.end());
  auto stats = CountCapacityViolations(tail, 1.05);
  EXPECT_LT(stats.ViolationRate(), 0.2);
  EXPECT_LT(stats.worst_ratio, 1.15);
}

}  // namespace
}  // namespace spinner::theory
