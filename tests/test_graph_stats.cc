#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/conversion.h"
#include "graph/generators.h"

namespace spinner {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  auto s = ComputeGraphStats(*g);
  EXPECT_EQ(s.num_vertices, 0);
  EXPECT_EQ(s.num_arcs, 0);
}

TEST(GraphStatsTest, StarGraphDegrees) {
  auto star = Star(9);  // hub 0 with 9 leaves
  auto g = BuildSymmetric(star.num_vertices, star.edges);
  ASSERT_TRUE(g.ok());
  auto s = ComputeGraphStats(*g);
  EXPECT_EQ(s.num_vertices, 10);
  EXPECT_EQ(s.num_arcs, 18);
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 9);
  EXPECT_DOUBLE_EQ(s.mean_degree, 1.8);
}

TEST(GraphStatsTest, RegularGraphPercentile) {
  auto ring = Ring(100);
  auto g = BuildSymmetric(ring.num_vertices, ring.edges);
  ASSERT_TRUE(g.ok());
  auto s = ComputeGraphStats(*g);
  EXPECT_EQ(s.min_degree, 2);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_EQ(s.p99_degree, 2);
}

TEST(GraphStatsTest, ToStringMentionsCounts) {
  auto g = BuildSymmetric(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  const std::string s = ToString(ComputeGraphStats(*g));
  EXPECT_NE(s.find("|V|=3"), std::string::npos);
  EXPECT_NE(s.find("arcs=4"), std::string::npos);
}

}  // namespace
}  // namespace spinner
