// Engine semantics tests: superstep-delayed message delivery, vote-to-halt
// with reactivation, combiners, aggregator visibility, worker contexts,
// placement-dependent local/remote statistics, vertex-local mutation, and
// determinism across worker counts.
#include "pregel/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/conversion.h"
#include "graph/generators.h"
#include "pregel/topology.h"

namespace spinner::pregel {
namespace {

CsrGraph RingGraph(int64_t n) {
  auto ring = Ring(n);
  auto g = BuildSymmetric(ring.num_vertices, ring.edges);
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

template <typename V, typename E, typename M>
PregelEngine<V, E, M> MakeEngine(const CsrGraph& graph, int workers,
                                 V init_value = V{}) {
  EngineConfig config;
  config.num_workers = workers;
  return PregelEngine<V, E, M>(
      graph, config, HashPlacement(workers),
      [init_value](VertexId) { return init_value; },
      [](VertexId, VertexId, EdgeWeight) { return E{}; });
}

// --- Message timing ---------------------------------------------------

/// Each vertex records the superstep at which it receives its neighbor's
/// message; sends happen only at superstep 0.
struct RecvVertex {
  int64_t received_at = -1;
};

class SendOnceProgram : public VertexProgram<RecvVertex, char, int64_t> {
 public:
  void Compute(VertexHandle<RecvVertex, char, int64_t>& v,
               std::span<const int64_t> messages) override {
    if (v.superstep() == 0) {
      v.SendMessageToAllEdges(1);
    }
    if (!messages.empty() && v.value().received_at < 0) {
      v.value().received_at = v.superstep();
    }
    if (v.superstep() > 0) v.VoteToHalt();
  }
};

TEST(PregelEngineTest, MessagesArriveExactlyOneSuperstepLater) {
  CsrGraph g = RingGraph(10);
  auto engine = MakeEngine<RecvVertex, char, int64_t>(g, 3);
  SendOnceProgram program;
  engine.Run(program);
  engine.ForEachVertex([](VertexId, const RecvVertex& v) {
    EXPECT_EQ(v.received_at, 1);
  });
}

// --- Vote-to-halt & reactivation ---------------------------------------

/// Vertex 0 sends a wake-up to its successor at superstep equal to the
/// successor's id; all vertices halt immediately otherwise. Checks that a
/// halted vertex is reactivated by an incoming message.
struct WakeVertex {
  int64_t woken_at = -1;
};

class ChainWakeProgram : public VertexProgram<WakeVertex, char, int64_t> {
 public:
  void Compute(VertexHandle<WakeVertex, char, int64_t>& v,
               std::span<const int64_t> messages) override {
    if (v.superstep() == 0 && v.id() == 0) {
      v.value().woken_at = 0;
      v.SendMessage(1, 0);
      v.VoteToHalt();
      return;
    }
    if (!messages.empty()) {
      v.value().woken_at = v.superstep();
      if (v.id() + 1 < v.total_num_vertices()) {
        v.SendMessage(v.id() + 1, 0);
      }
    }
    v.VoteToHalt();
  }
};

TEST(PregelEngineTest, HaltedVerticesReactivateOnMessage) {
  auto path = Path(6);
  auto g = BuildSymmetric(path.num_vertices, path.edges);
  ASSERT_TRUE(g.ok());
  auto engine = MakeEngine<WakeVertex, char, int64_t>(*g, 2);
  ChainWakeProgram program;
  RunStats stats = engine.Run(program);
  engine.ForEachVertex([](VertexId id, const WakeVertex& v) {
    EXPECT_EQ(v.woken_at, id) << "vertex " << id;
  });
  // The chain takes n supersteps, then one more with no messages to halt.
  EXPECT_LE(stats.supersteps, 7);
}

TEST(PregelEngineTest, TerminatesWhenAllHaltAndNoMessages) {
  CsrGraph g = RingGraph(5);
  auto engine = MakeEngine<RecvVertex, char, int64_t>(g, 2);

  class HaltNow : public VertexProgram<RecvVertex, char, int64_t> {
   public:
    void Compute(VertexHandle<RecvVertex, char, int64_t>& v,
                 std::span<const int64_t>) override {
      v.VoteToHalt();
    }
  } program;
  RunStats stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 1);
  EXPECT_EQ(stats.per_superstep[0].active_vertices, 5);
}

// --- Combiner -----------------------------------------------------------

struct SumVertex {
  int64_t sum = 0;
  int64_t message_count = 0;
};

class CombinerProgram : public VertexProgram<SumVertex, char, int64_t> {
 public:
  void Compute(VertexHandle<SumVertex, char, int64_t>& v,
               std::span<const int64_t> messages) override {
    if (v.superstep() == 0) {
      // Everyone sends its id to vertex 0, twice.
      v.SendMessage(0, v.id());
      v.SendMessage(0, v.id());
      return;
    }
    v.value().message_count = static_cast<int64_t>(messages.size());
    for (int64_t m : messages) v.value().sum += m;
    v.VoteToHalt();
  }
  bool HasCombiner() const override { return true; }
  void Combine(int64_t* acc, const int64_t& in) const override { *acc += in; }
};

TEST(PregelEngineTest, CombinerReducesToSingleMessagePerVertex) {
  CsrGraph g = RingGraph(8);
  auto engine = MakeEngine<SumVertex, char, int64_t>(g, 3);
  CombinerProgram program;
  engine.Run(program);
  const SumVertex& v0 = engine.Value(0);
  EXPECT_EQ(v0.message_count, 1);          // all 16 messages combined
  EXPECT_EQ(v0.sum, 2 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

// --- Aggregators ---------------------------------------------------------

struct AggVertex {
  int64_t observed = -1;
};

class AggregatorProgram : public VertexProgram<AggVertex, char, char> {
 public:
  void RegisterAggregators(AggregatorRegistry* registry) override {
    registry->Register("count", std::make_unique<LongSumAggregator>(),
                       /*persistent=*/false);
  }
  void Compute(VertexHandle<AggVertex, char, char>& v,
               std::span<const char>) override {
    if (v.superstep() == 0) {
      // Value aggregated at superstep 0 must be invisible now...
      EXPECT_EQ(v.Aggregated<LongSumAggregator>("count")->value(), 0);
      v.AggregatePartial<LongSumAggregator>("count")->Add(1);
    } else if (v.superstep() == 1) {
      // ...and visible at superstep 1.
      v.value().observed =
          v.Aggregated<LongSumAggregator>("count")->value();
      v.VoteToHalt();
    }
  }
  bool MasterCompute(MasterContext& ctx) override {
    return ctx.superstep() < 1;  // run exactly 2 supersteps
  }
};

TEST(PregelEngineTest, AggregatedValuesVisibleNextSuperstep) {
  CsrGraph g = RingGraph(12);
  auto engine = MakeEngine<AggVertex, char, char>(g, 4);
  AggregatorProgram program;
  engine.Run(program);
  engine.ForEachVertex([](VertexId, const AggVertex& v) {
    EXPECT_EQ(v.observed, 12);
  });
}

// --- Worker context -------------------------------------------------------

class CountingContext : public WorkerContextBase {
 public:
  int64_t local_count = 0;
};

struct WcVertex {
  int64_t worker_total = -1;
};

class WorkerContextProgram : public VertexProgram<WcVertex, char, char> {
 public:
  std::unique_ptr<WorkerContextBase> CreateWorkerContext() override {
    return std::make_unique<CountingContext>();
  }
  void Compute(VertexHandle<WcVertex, char, char>& v,
               std::span<const char>) override {
    auto* ctx = static_cast<CountingContext*>(v.worker_context());
    if (v.superstep() == 0) {
      ++ctx->local_count;  // shared mutable state within the worker
    } else {
      v.value().worker_total = ctx->local_count;
      v.VoteToHalt();
    }
  }
  bool MasterCompute(MasterContext& ctx) override {
    return ctx.superstep() < 1;
  }
};

TEST(PregelEngineTest, WorkerContextSharedWithinWorker) {
  CsrGraph g = RingGraph(20);
  const int workers = 4;
  auto engine = MakeEngine<WcVertex, char, char>(g, workers);
  WorkerContextProgram program;
  engine.Run(program);
  // Each vertex must have seen exactly the number of vertices its worker
  // owns.
  std::vector<int64_t> owned(workers, 0);
  for (VertexId v = 0; v < 20; ++v) ++owned[engine.WorkerOf(v)];
  engine.ForEachVertex([&](VertexId v, const WcVertex& val) {
    EXPECT_EQ(val.worker_total, owned[engine.WorkerOf(v)]);
  });
}

// --- Statistics ------------------------------------------------------------

class BroadcastProgram : public VertexProgram<RecvVertex, char, int64_t> {
 public:
  void Compute(VertexHandle<RecvVertex, char, int64_t>& v,
               std::span<const int64_t>) override {
    if (v.superstep() == 0) {
      v.SendMessageToAllEdges(7);
    } else {
      v.VoteToHalt();
    }
  }
};

TEST(PregelEngineTest, SingleWorkerMakesAllMessagesLocal) {
  CsrGraph g = RingGraph(16);
  auto engine = MakeEngine<RecvVertex, char, int64_t>(g, 1);
  BroadcastProgram program;
  RunStats stats = engine.Run(program);
  const auto& s0 = stats.per_superstep[0];
  EXPECT_EQ(s0.messages_sent, 32);  // ring: 2 arcs per vertex
  EXPECT_EQ(s0.messages_local, 32);
  EXPECT_EQ(s0.messages_remote, 0);
}

TEST(PregelEngineTest, LocalRemoteSplitMatchesPlacement) {
  CsrGraph g = RingGraph(16);
  EngineConfig config;
  config.num_workers = 4;
  // Block placement: only ring edges crossing block boundaries are remote:
  // 4 boundaries × 2 directions × 2 arcs = 8... each boundary edge carries
  // one arc per direction: 4 boundaries × 2 arcs = 8 remote messages.
  PregelEngine<RecvVertex, char, int64_t> engine(
      g, config, BlockPlacement(16, 4),
      [](VertexId) { return RecvVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  BroadcastProgram program;
  RunStats stats = engine.Run(program);
  const auto& s0 = stats.per_superstep[0];
  EXPECT_EQ(s0.messages_sent, 32);
  EXPECT_EQ(s0.messages_remote, 8);
  EXPECT_EQ(s0.messages_local, 24);
  // Per-worker ingest sums match the global count.
  int64_t in_sum = 0;
  for (int64_t x : s0.worker_messages_in) in_sum += x;
  EXPECT_EQ(in_sum, 32);
}

// --- Vertex-local mutation ---------------------------------------------

struct MutVertex {
  int64_t final_degree = 0;
};

class AddEdgeProgram : public VertexProgram<MutVertex, char, char> {
 public:
  void Compute(VertexHandle<MutVertex, char, char>& v,
               std::span<const char>) override {
    if (v.superstep() == 0) {
      v.AddEdge((v.id() + 2) % v.total_num_vertices(), char{});
    }
    v.value().final_degree = static_cast<int64_t>(v.edges().size());
    v.VoteToHalt();
  }
};

TEST(PregelEngineTest, AddEdgeIsImmediatelyVisible) {
  CsrGraph g = RingGraph(6);
  auto engine = MakeEngine<MutVertex, char, char>(g, 2);
  AddEdgeProgram program;
  engine.Run(program);
  engine.ForEachVertex([](VertexId, const MutVertex& v) {
    EXPECT_EQ(v.final_degree, 3);  // 2 ring arcs + 1 added
  });
}

// --- Determinism across worker counts -----------------------------------

TEST(PregelEngineTest, ResultsIdenticalAcrossWorkerCounts) {
  auto ws = WattsStrogatz(300, 3, 0.3, 4);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  auto run = [&](int workers) {
    auto engine = MakeEngine<SumVertex, char, int64_t>(*g, workers);
    class DegreeSum : public VertexProgram<SumVertex, char, int64_t> {
     public:
      void Compute(VertexHandle<SumVertex, char, int64_t>& v,
                   std::span<const int64_t> messages) override {
        if (v.superstep() == 0) {
          v.SendMessageToAllEdges(v.id());
          return;
        }
        for (int64_t m : messages) v.value().sum += m;
        v.VoteToHalt();
      }
    } program;
    engine.Run(program);
    std::vector<int64_t> sums;
    engine.ForEachVertex([&sums](VertexId, const SumVertex& v) {
      sums.push_back(v.sum);
    });
    return sums;
  };

  const auto one = run(1);
  const auto four = run(4);
  const auto eleven = run(11);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eleven);
}

TEST(PregelEngineTest, MaxSuperstepsCapStopsRun) {
  CsrGraph g = RingGraph(4);
  EngineConfig config;
  config.num_workers = 1;
  config.max_supersteps = 3;
  PregelEngine<RecvVertex, char, int64_t> engine(
      g, config, HashPlacement(1), [](VertexId) { return RecvVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  class Forever : public VertexProgram<RecvVertex, char, int64_t> {
   public:
    void Compute(VertexHandle<RecvVertex, char, int64_t>& v,
                 std::span<const int64_t>) override {
      v.SendMessageToAllEdges(1);
    }
  } program;
  RunStats stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 3);
}

TEST(PregelEngineDeathTest, SecondRunAborts) {
  CsrGraph g = RingGraph(4);
  auto engine = MakeEngine<RecvVertex, char, int64_t>(g, 1);
  SendOnceProgram program;
  engine.Run(program);
  SendOnceProgram program2;
  EXPECT_DEATH(engine.Run(program2), "Run called twice");
}

TEST(PregelEngineDeathTest, PlacementOutOfRangeAborts) {
  CsrGraph g = RingGraph(4);
  EngineConfig config;
  config.num_workers = 2;
  EXPECT_DEATH(
      (PregelEngine<RecvVertex, char, int64_t>(
          g, config, [](VertexId) { return 5; },
          [](VertexId) { return RecvVertex{}; },
          [](VertexId, VertexId, EdgeWeight) { return char{}; })),
      "placement");
}

}  // namespace
}  // namespace spinner::pregel
