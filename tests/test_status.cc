#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace spinner {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("disk gone").message(), "disk gone");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("k < 1").ToString(),
            "InvalidArgument: k < 1");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  SPINNER_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  SPINNER_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(3).ok());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace spinner
