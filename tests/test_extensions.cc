// Generalizations the paper sketches but does not evaluate (§II.A
// "although our approach is general", §III.B homogeneity assumption):
// vertex-balanced mode and heterogeneous partition capacities.
#include <gtest/gtest.h>

#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

namespace spinner {
namespace {

CsrGraph HubGraph() {
  // Power-law graph where vertex- and edge-balance objectives diverge.
  auto ba = BarabasiAlbert(3000, 6, 6, 77);
  SPINNER_CHECK(ba.ok());
  auto g = BuildSymmetric(ba->num_vertices, ba->edges);
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

TEST(VertexBalanceModeTest, BalancesVertexCountsInsteadOfEdges) {
  CsrGraph g = HubGraph();
  SpinnerConfig config;
  config.num_partitions = 8;
  config.balance_mode = BalanceMode::kVertices;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());

  // metrics.loads count vertices in this mode and must respect c.
  int64_t total = 0;
  for (int64_t l : result->metrics.loads) total += l;
  EXPECT_EQ(total, g.NumVertices());
  EXPECT_LE(result->metrics.rho, config.additional_capacity + 0.12);

  // The same run measured on *edges* may be (and typically is) less
  // balanced — the paper's point about Wang et al.'s vertex balancing.
  auto edge_metrics = ComputeMetrics(g, result->assignment, 8, 1.05);
  ASSERT_TRUE(edge_metrics.ok());
  EXPECT_GE(edge_metrics->rho, result->metrics.rho - 0.05);
}

TEST(VertexBalanceModeTest, StillImprovesLocality) {
  CsrGraph g = HubGraph();
  SpinnerConfig config;
  config.num_partitions = 8;
  config.balance_mode = BalanceMode::kVertices;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(g);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.phi, 0.25);  // hash floor is 1/8
}

TEST(HeterogeneousCapacityTest, LoadsFollowPartitionWeights) {
  auto ws = WattsStrogatz(2000, 5, 0.3, 5);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  // One double-size machine plus three regular ones.
  SpinnerConfig config;
  config.num_partitions = 4;
  config.partition_weights = {2.0, 1.0, 1.0, 1.0};
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(*g);
  ASSERT_TRUE(result.ok());

  const auto& loads = result->metrics.loads;
  ASSERT_EQ(loads.size(), 4u);
  const double total = static_cast<double>(g->TotalArcWeight());
  // Partition 0 should carry ~2/5 of the load; the others ~1/5 each.
  EXPECT_NEAR(static_cast<double>(loads[0]) / total, 0.4, 0.08);
  for (int l = 1; l < 4; ++l) {
    EXPECT_NEAR(static_cast<double>(loads[l]) / total, 0.2, 0.06);
  }
  // rho is measured against each partition's own share: still ≤ c-ish.
  EXPECT_LE(result->metrics.rho, config.additional_capacity + 0.12);
}

TEST(HeterogeneousCapacityTest, RejectsBadWeights) {
  auto ws = WattsStrogatz(200, 3, 0.3, 5);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  SpinnerConfig config;
  config.num_partitions = 4;
  config.partition_weights = {1.0, 1.0};  // wrong size
  SpinnerPartitioner partitioner(config);
  EXPECT_FALSE(partitioner.Partition(*g).ok());
}

TEST(MetricsExTest, VertexModeLoads) {
  auto g = BuildSymmetric(4, {{0, 1}, {0, 2}, {0, 3}});
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> labels = {0, 1, 1, 1};
  BalanceSpec spec;
  spec.mode = BalanceMode::kVertices;
  auto m = ComputeMetricsEx(*g, labels, 2, 1.05, spec);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->loads, (std::vector<int64_t>{1, 3}));
  EXPECT_DOUBLE_EQ(m->rho, 1.5);  // 3 vertices vs ideal 2
}

TEST(MetricsExTest, WeightedRho) {
  auto g = BuildSymmetric(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  // loads (edge mode): each vertex deg 1 → partition loads {2, 2}.
  const std::vector<PartitionId> labels = {0, 0, 1, 1};
  BalanceSpec spec;
  spec.partition_weights = {3.0, 1.0};  // ideal shares {3, 1}
  auto m = ComputeMetricsEx(*g, labels, 2, 1.05, spec);
  ASSERT_TRUE(m.ok());
  // Partition 1 holds 2 of 4 units against an ideal of 1 → rho = 2.
  EXPECT_DOUBLE_EQ(m->rho, 2.0);
}

TEST(MetricsExTest, RejectsNonPositiveWeights) {
  auto g = BuildSymmetric(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> labels = {0, 1};
  BalanceSpec spec;
  spec.partition_weights = {1.0, 0.0};
  EXPECT_FALSE(ComputeMetricsEx(*g, labels, 2, 1.05, spec).ok());
}

}  // namespace
}  // namespace spinner
