// The transport's chunk layer (dist/transport.h SendMessage/RecvMessage):
// round trips at tiny frame limits, the runtime TransportOptions knob, and
// — most importantly — every reassembly failure path. A corrupt or
// malicious chunk stream must always surface a Status: truncation
// mid-chunk, duplicate/out-of-order indices, chunk-count overflow,
// zero-length chunks and checksum mismatches are each rejected, and the
// oversized-total guard fires BEFORE any allocation.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "dist/transport.h"

namespace spinner {
namespace {

using dist::Frame;
using dist::TransportOptions;
using dist::WireCounters;

/// Mirror of the chunk envelope layout (docs/WIRE_FORMAT.md):
///   message_id u64 | inner_type u32 | chunk_index u32 | chunk_count u32 |
///   total_size u64 | checksum u64
struct TestEnvelope {
  uint64_t message_id = 7;
  uint32_t inner_type = 5;
  uint32_t chunk_index = 0;
  uint32_t chunk_count = 2;
  uint64_t total_size = 0;
  uint64_t checksum = 0;
};

constexpr size_t kEnvelopeSize = 36;

std::vector<uint8_t> ChunkFramePayload(const TestEnvelope& env,
                                       std::span<const uint8_t> bytes) {
  std::vector<uint8_t> payload(kEnvelopeSize + bytes.size());
  std::memcpy(payload.data(), &env.message_id, 8);
  std::memcpy(payload.data() + 8, &env.inner_type, 4);
  std::memcpy(payload.data() + 12, &env.chunk_index, 4);
  std::memcpy(payload.data() + 16, &env.chunk_count, 4);
  std::memcpy(payload.data() + 20, &env.total_size, 8);
  std::memcpy(payload.data() + 28, &env.checksum, 8);
  if (!bytes.empty()) {
    std::memcpy(payload.data() + kEnvelopeSize, bytes.data(), bytes.size());
  }
  return payload;
}

std::vector<uint8_t> Pattern(size_t size) {
  std::vector<uint8_t> bytes(size);
  std::iota(bytes.begin(), bytes.end(), uint8_t{1});
  return bytes;
}

TransportOptions TinyFrames(uint64_t max_frame_payload = 128) {
  TransportOptions options;
  options.max_frame_payload = max_frame_payload;
  return options;
}

TEST(TransportChunkTest, SmallMessagesTravelAsPlainFrames) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  const std::vector<uint8_t> payload = Pattern(100);
  WireCounters sent, received;
  ASSERT_TRUE(dist::SendMessage(pair->first.fd(), 9, payload, options,
                                /*message_id=*/1, &sent)
                  .ok());
  auto frame = dist::RecvMessage(pair->second.fd(), options, &received);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, 9u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(sent.frames_sent, 1);
  EXPECT_EQ(sent.chunked_messages_sent, 0);
  EXPECT_EQ(received.chunked_messages_received, 0);
  EXPECT_EQ(sent.bytes_sent, received.bytes_received);
}

TEST(TransportChunkTest, LargeMessagesRoundTripAcrossManyChunks) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames(64);
  // 5000 bytes at a 64-byte frame limit: hundreds of chunks — more than a
  // socket buffer holds at per-frame skb accounting, so the send runs on
  // its own thread like a real peer.
  const std::vector<uint8_t> payload = Pattern(5000);
  WireCounters sent, received;
  Status send_status;
  std::thread sender([&] {
    send_status = dist::SendMessage(pair->first.fd(), 3, payload, options,
                                    /*message_id=*/42, &sent);
  });
  auto frame = dist::RecvMessage(pair->second.fd(), options, &received);
  sender.join();
  ASSERT_TRUE(send_status.ok()) << send_status;
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, 3u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_GT(sent.frames_sent, 100);
  EXPECT_EQ(sent.chunked_messages_sent, 1);
  EXPECT_EQ(received.chunked_messages_received, 1);
  EXPECT_EQ(received.frames_received, sent.frames_sent);
  // Every frame is within the forced limit (header adds 16 bytes).
  EXPECT_LE(sent.bytes_sent,
            sent.frames_sent * static_cast<int64_t>(64 + 16));
}

TEST(TransportChunkTest, EmptyAndExactBoundaryPayloads) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  // Empty message.
  ASSERT_TRUE(
      dist::SendMessage(pair->first.fd(), 1, {}, options, 1).ok());
  auto empty = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->payload.empty());
  // Exactly the frame limit: still one plain frame.
  const std::vector<uint8_t> boundary = Pattern(128);
  ASSERT_TRUE(
      dist::SendMessage(pair->first.fd(), 1, boundary, options, 2).ok());
  auto fits = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ(fits->payload, boundary);
  // One byte past: chunked.
  const std::vector<uint8_t> over = Pattern(129);
  WireCounters counters;
  ASSERT_TRUE(dist::SendMessage(pair->first.fd(), 1, over, options, 3,
                                &counters)
                  .ok());
  EXPECT_EQ(counters.chunked_messages_sent, 1);
  auto chunked = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(chunked->payload, over);
}

TEST(TransportChunkTest, TruncatedMidChunkIsAnIOError) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  const std::vector<uint8_t> payload = Pattern(60);
  TestEnvelope env;
  env.total_size = 100;
  env.checksum = dist::ChecksumBytes(payload);
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, payload), options)
                  .ok());
  pair->first.Close();  // peer dies before chunk 1 — never a hang
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(TransportChunkTest, DuplicateAndOutOfOrderChunksAreRejected) {
  for (const uint32_t second_index : {0u, 2u}) {  // duplicate; skipped
    auto pair = dist::CreateSocketPair();
    ASSERT_TRUE(pair.ok());
    const TransportOptions options = TinyFrames();
    const std::vector<uint8_t> half = Pattern(50);
    TestEnvelope env;
    env.chunk_count = 3;
    env.total_size = 150;
    env.checksum = 1234;
    ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                                ChunkFramePayload(env, half), options)
                    .ok());
    env.chunk_index = second_index;
    ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                                ChunkFramePayload(env, half), options)
                    .ok());
    auto result = dist::RecvMessage(pair->second.fd(), options);
    ASSERT_FALSE(result.ok()) << "second_index=" << second_index;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("duplicate or out-of-order"),
              std::string::npos)
        << result.status();
  }
}

TEST(TransportChunkTest, FirstChunkMustBeIndexZero) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  TestEnvelope env;
  env.chunk_index = 1;
  env.total_size = 100;
  const std::vector<uint8_t> bytes = Pattern(50);
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, bytes), options)
                  .ok());
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransportChunkTest, ChunkCountOverflowIsRejectedBeforeAllocation) {
  // count = 0, count exceeding the total byte count, a total above
  // max_message_size, and a total larger than the announced chunks can
  // carry at the frame limit must all fail before the message buffer
  // exists.
  struct Case {
    uint32_t chunk_count;
    uint64_t total_size;
  };
  const TransportOptions options = TinyFrames();
  for (const Case c : {Case{0, 100}, Case{200, 100},
                       Case{2, dist::kMaxMessageSize + 1},
                       Case{2, 10000}}) {
    auto pair = dist::CreateSocketPair();
    ASSERT_TRUE(pair.ok());
    TestEnvelope env;
    env.chunk_count = c.chunk_count;
    env.total_size = c.total_size;
    const std::vector<uint8_t> bytes = Pattern(50);
    ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                                ChunkFramePayload(env, bytes), options)
                    .ok());
    auto result = dist::RecvMessage(pair->second.fd(), options);
    ASSERT_FALSE(result.ok())
        << "count=" << c.chunk_count << " total=" << c.total_size;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(TransportChunkTest, OversizedTotalRespectsConfiguredMessageLimit) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  TransportOptions options = TinyFrames();
  options.max_message_size = 1000;
  TestEnvelope env;
  env.total_size = 1001;
  env.chunk_count = 11;
  const std::vector<uint8_t> bytes = Pattern(92);
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, bytes), options)
                  .ok());
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("limit"), std::string::npos);
}

TEST(TransportChunkTest, ZeroLengthChunksAreRejected) {
  // First chunk empty, and a later chunk empty after the payload is
  // already complete (a chunk-count lie) — both must fail.
  for (const bool empty_first : {true, false}) {
    auto pair = dist::CreateSocketPair();
    ASSERT_TRUE(pair.ok());
    const TransportOptions options = TinyFrames();
    const std::vector<uint8_t> full = Pattern(80);
    TestEnvelope env;
    env.total_size = 80;
    env.checksum = dist::ChecksumBytes(full);
    if (empty_first) {
      ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                                  ChunkFramePayload(env, {}), options)
                      .ok());
    } else {
      ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                                  ChunkFramePayload(env, full), options)
                      .ok());
      env.chunk_index = 1;
      ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                                  ChunkFramePayload(env, {}), options)
                      .ok());
    }
    auto result = dist::RecvMessage(pair->second.fd(), options);
    ASSERT_FALSE(result.ok()) << "empty_first=" << empty_first;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("zero-length"),
              std::string::npos)
        << result.status();
  }
}

TEST(TransportChunkTest, OversizedChunkIsRejected) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  const std::vector<uint8_t> big = Pattern(80);
  TestEnvelope env;
  env.chunk_count = 2;
  env.total_size = 100;  // chunk 1's 80 bytes exceed the 20 remaining
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, big), options)
                  .ok());
  env.chunk_index = 1;
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, big), options)
                  .ok());
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("oversized chunk"),
            std::string::npos)
      << result.status();
}

TEST(TransportChunkTest, ChecksumMismatchIsRejected) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  const std::vector<uint8_t> a = Pattern(60);
  const std::vector<uint8_t> b = Pattern(40);
  TestEnvelope env;
  env.total_size = 100;
  env.checksum = 0xdeadbeef;  // not the FNV-1a of a||b
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, a), options)
                  .ok());
  env.chunk_index = 1;
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, b), options)
                  .ok());
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos)
      << result.status();
}

TEST(TransportChunkTest, EnvelopeDriftMidMessageIsRejected) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  const std::vector<uint8_t> half = Pattern(50);
  TestEnvelope env;
  env.total_size = 100;
  env.checksum = 99;
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, half), options)
                  .ok());
  env.chunk_index = 1;
  env.message_id = 8;  // a different message's chunk interleaved
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, half), options)
                  .ok());
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransportChunkTest, MissingChunkSurfacesWhenAnotherFrameArrives) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const TransportOptions options = TinyFrames();
  const std::vector<uint8_t> half = Pattern(50);
  TestEnvelope env;
  env.total_size = 100;
  env.checksum = 99;
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), dist::kChunkFrameType,
                              ChunkFramePayload(env, half), options)
                  .ok());
  // The sender "forgets" chunk 1 and moves on to a plain frame.
  ASSERT_TRUE(dist::SendFrame(pair->first.fd(), 5, half, options).ok());
  auto result = dist::RecvMessage(pair->second.fd(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("missing chunks"),
            std::string::npos)
      << result.status();
}

TEST(TransportChunkTest, ReservedChunkTypeCannotBeSentAsAMessage) {
  auto pair = dist::CreateSocketPair();
  ASSERT_TRUE(pair.ok());
  const std::vector<uint8_t> payload = Pattern(10);
  EXPECT_FALSE(dist::SendMessage(pair->first.fd(), dist::kChunkFrameType,
                                 payload, TinyFrames(), 1)
                   .ok());
}

TEST(TransportOptionsTest, EnvOverrideAndExplicitResolution) {
  ASSERT_EQ(::setenv("SPINNER_WIRE_MAX_PAYLOAD", "8192", 1), 0);
  EXPECT_EQ(TransportOptions::FromEnv().max_frame_payload, 8192u);
  // An explicit override (config/session knob) wins over the env.
  EXPECT_EQ(TransportOptions::Resolve(4096).max_frame_payload, 4096u);
  EXPECT_EQ(TransportOptions::Resolve(0).max_frame_payload, 8192u);
  // Values are clamped into [kMinFramePayload, kMaxFramePayload].
  EXPECT_EQ(TransportOptions::Resolve(1).max_frame_payload,
            dist::kMinFramePayload);
  ASSERT_EQ(::setenv("SPINNER_WIRE_MAX_PAYLOAD", "1", 1), 0);
  EXPECT_EQ(TransportOptions::FromEnv().max_frame_payload,
            dist::kMinFramePayload);
  ASSERT_EQ(::setenv("SPINNER_WIRE_MAX_PAYLOAD", "not-a-number", 1), 0);
  EXPECT_EQ(TransportOptions::FromEnv().max_frame_payload,
            dist::kMaxFramePayload);
  ASSERT_EQ(::unsetenv("SPINNER_WIRE_MAX_PAYLOAD"), 0);
  EXPECT_EQ(TransportOptions::FromEnv().max_frame_payload,
            dist::kMaxFramePayload);
}

}  // namespace
}  // namespace spinner
