#include "spinner/initial_assignment.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/conversion.h"
#include "graph/generators.h"

namespace spinner {
namespace {

TEST(RandomAssignmentTest, RangeDeterminismSpread) {
  auto a = RandomAssignment(1000, 8, 3);
  auto b = RandomAssignment(1000, 8, 3);
  auto c = RandomAssignment(1000, 8, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::vector<int> counts(8, 0);
  for (PartitionId l : a) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 8);
    ++counts[l];
  }
  for (int cnt : counts) EXPECT_NEAR(cnt, 125, 50);  // roughly uniform
}

TEST(ExtendForNewVerticesTest, KeepsExistingAndBalancesNew) {
  // 4 old vertices in a path, 2 new isolated-ish vertices appended.
  auto g = BuildSymmetric(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> previous = {0, 0, 0, 0};
  auto labels = ExtendForNewVertices(*g, previous, 2);
  ASSERT_TRUE(labels.ok());
  for (int v = 0; v < 4; ++v) EXPECT_EQ((*labels)[v], 0);
  // Partition 0 already carries all the old load; both new vertices must
  // land on the empty partition 1 (least loaded at each step... the second
  // one still: load(1)=deg(4)=1 < load(0)=6).
  EXPECT_EQ((*labels)[4], 1);
  EXPECT_EQ((*labels)[5], 1);
}

TEST(ExtendForNewVerticesTest, NoNewVerticesIsIdentity) {
  auto g = BuildSymmetric(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> previous = {1, 0, 1};
  auto labels = ExtendForNewVertices(*g, previous, 2);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, previous);
}

TEST(ExtendForNewVerticesTest, RejectsBadInputs) {
  auto g = BuildSymmetric(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  const std::vector<PartitionId> too_many = {0, 0, 0};
  EXPECT_FALSE(ExtendForNewVertices(*g, too_many, 2).ok());
  const std::vector<PartitionId> bad_label = {5, 0};
  EXPECT_FALSE(ExtendForNewVertices(*g, bad_label, 2).ok());
}

TEST(ElasticExpandTest, MigratesExpectedFraction) {
  const int old_k = 4;
  const int new_k = 6;  // n=2 added, p = 2/6 = 1/3
  const int64_t n = 30000;
  std::vector<PartitionId> previous(n);
  for (int64_t v = 0; v < n; ++v) {
    previous[v] = static_cast<PartitionId>(v % old_k);
  }
  auto labels = ElasticExpand(previous, old_k, new_k, 7);
  ASSERT_TRUE(labels.ok());
  int64_t moved = 0;
  std::set<PartitionId> new_labels_seen;
  for (int64_t v = 0; v < n; ++v) {
    if ((*labels)[v] != previous[v]) {
      ++moved;
      EXPECT_GE((*labels)[v], old_k);  // only moves into new partitions
      EXPECT_LT((*labels)[v], new_k);
      new_labels_seen.insert((*labels)[v]);
    }
  }
  EXPECT_NEAR(static_cast<double>(moved) / static_cast<double>(n), 1.0 / 3.0,
              0.02);
  EXPECT_EQ(new_labels_seen.size(), 2u);  // both new partitions used
}

TEST(ElasticExpandTest, DeterministicAndValidated) {
  const std::vector<PartitionId> prev = {0, 1, 0, 1};
  auto a = ElasticExpand(prev, 2, 3, 5);
  auto b = ElasticExpand(prev, 2, 3, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(ElasticExpand(prev, 2, 2, 5).ok());   // not an expansion
  EXPECT_FALSE(ElasticExpand(prev, 0, 3, 5).ok());
  const std::vector<PartitionId> bad = {0, 9};
  EXPECT_FALSE(ElasticExpand(bad, 2, 3, 5).ok());
}

TEST(ElasticShrinkTest, EvacuatesRemovedPartitionsOnly) {
  const int old_k = 4;
  const int new_k = 2;
  const int64_t n = 10000;
  std::vector<PartitionId> previous(n);
  for (int64_t v = 0; v < n; ++v) {
    previous[v] = static_cast<PartitionId>(v % old_k);
  }
  auto labels = ElasticShrink(previous, old_k, new_k, 9);
  ASSERT_TRUE(labels.ok());
  std::vector<int64_t> counts(new_k, 0);
  for (int64_t v = 0; v < n; ++v) {
    ASSERT_GE((*labels)[v], 0);
    ASSERT_LT((*labels)[v], new_k);
    if (previous[v] < new_k) {
      EXPECT_EQ((*labels)[v], previous[v]);  // survivors stay put
    }
    ++counts[(*labels)[v]];
  }
  // Evacuees spread roughly evenly across survivors.
  EXPECT_NEAR(counts[0], n / 2, n / 20);
}

TEST(ElasticShrinkTest, Validation) {
  const std::vector<PartitionId> prev = {0, 1, 2};
  EXPECT_FALSE(ElasticShrink(prev, 3, 3, 1).ok());
  EXPECT_FALSE(ElasticShrink(prev, 3, 0, 1).ok());
  const std::vector<PartitionId> bad = {0, 7, 1};
  EXPECT_FALSE(ElasticShrink(bad, 3, 2, 1).ok());
}

}  // namespace
}  // namespace spinner
