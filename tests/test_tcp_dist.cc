// The TCP execution mode: Hello/Assign/Resume codec round trips, the
// WorkerRegistry accept/handshake/pool lifecycle, and the same central
// guarantees the unix-socket lane asserts — bit-identity to the
// in-process substrate across {num_shards, num_workers} shapes, a worker
// death mid-superstep surfacing a clean Status (never a hang) — plus the
// TCP-only one: a worker re-dialing (or kept pooled) with a matching
// PersistentShardStore fingerprint resumes with zero slice download,
// asserted through the coordinator's download counters.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "dist/coordinator.h"
#include "dist/registry.h"
#include "dist/shard_store.h"
#include "dist/tcp_transport.h"
#include "dist/transport.h"
#include "dist/wire_format.h"
#include "dist/worker.h"
#include "graph/conversion.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/sharded_store.h"
#include "spinner/session.h"
#include "spinner/sharded_program.h"

namespace spinner {
namespace {

using dist::MessageType;
using dist::MultiProcessOptions;
using dist::RegistryOptions;
using dist::WorkerRegistry;

CsrGraph SmallWorldConverted(int64_t n, uint64_t seed = 11) {
  auto ws = WattsStrogatz(n, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

/// One in-process reference run over a fresh store.
Result<ShardedRunResult> ReferenceRun(const SpinnerConfig& config,
                                      const CsrGraph& g, int num_shards,
                                      std::vector<PartitionId>* labels) {
  auto store = ShardedGraphStore::Build(g, num_shards);
  if (!store.ok()) return store.status();
  ThreadPool pool(2);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = RunShardedSpinner(config, &*store, no_labels, &pool, nullptr);
  if (run.ok()) *labels = store->labels();
  return run;
}

/// Forks a dial-in worker process running the full TCP worker loop.
pid_t ForkTcpWorker(const std::string& address,
                    const dist::TransportOptions& transport,
                    const dist::WorkerLoopOptions& loop = {}) {
  const pid_t pid = fork();
  SPINNER_CHECK(pid >= 0);
  if (pid == 0) {
    _exit(dist::RunTcpWorker(address, transport, loop));
  }
  return pid;
}

void ReapAll(std::vector<pid_t>* pids) {
  for (const pid_t pid : *pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  }
  pids->clear();
}

// --- Handshake codecs ------------------------------------------------------

TEST(TcpWireFormatTest, HelloAssignResumeRoundTrip) {
  dist::HelloMessage hello;
  hello.capacity = 4;
  hello.flags = 0;
  auto hello2 = dist::HelloMessage::Decode(hello.Encode());
  ASSERT_TRUE(hello2.ok()) << hello2.status();
  EXPECT_EQ(hello2->protocol_version, dist::kProtocolVersion);
  EXPECT_EQ(hello2->capacity, 4);

  dist::AssignMessage assign;
  assign.num_partitions = 8;
  assign.seed = 99;
  assign.balance_on_vertices = 1;
  assign.per_worker_async = 0;
  assign.num_vertices = 4096;
  assign.num_shards_total = 6;
  assign.owned_shards = {2, 3, 4};
  assign.slice_fingerprints = {11, 0, 13};
  assign.fail_after_score_steps = 7;
  auto assign2 = dist::AssignMessage::Decode(assign.Encode());
  ASSERT_TRUE(assign2.ok()) << assign2.status();
  EXPECT_EQ(assign2->num_partitions, 8);
  EXPECT_EQ(assign2->seed, 99u);
  EXPECT_EQ(assign2->owned_shards, assign.owned_shards);
  EXPECT_EQ(assign2->slice_fingerprints, assign.slice_fingerprints);
  EXPECT_EQ(assign2->fail_after_score_steps, 7);
  const SpinnerConfig config = assign2->ToConfig();
  EXPECT_EQ(config.num_partitions, 8);
  EXPECT_EQ(config.balance_mode, BalanceMode::kVertices);
  EXPECT_FALSE(config.per_worker_async);

  dist::ResumeMessage resume;
  resume.fingerprints = {11, 0, 13};
  auto resume2 = dist::ResumeMessage::Decode(resume.Encode());
  ASSERT_TRUE(resume2.ok());
  EXPECT_EQ(resume2->fingerprints, resume.fingerprints);
}

TEST(TcpWireFormatTest, HandshakeDecodersRejectMalformedPayloads) {
  dist::AssignMessage assign;
  assign.owned_shards = {0, 1};
  assign.slice_fingerprints = {5, 6};
  const std::vector<uint8_t> bytes = assign.Encode();
  for (size_t cut = 0; cut < bytes.size(); cut += 5) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(dist::AssignMessage::Decode(truncated).ok())
        << "cut=" << cut;
  }
  // A fingerprint list that does not pair 1:1 with the shard list can
  // never be matched against a store — rejected at decode.
  dist::AssignMessage skewed;
  skewed.owned_shards = {0, 1, 2};
  skewed.slice_fingerprints = {5};
  EXPECT_FALSE(
      dist::AssignMessage::Decode(skewed.Encode()).ok());

  EXPECT_FALSE(dist::HelloMessage::Decode({}).ok());
  EXPECT_FALSE(dist::ResumeMessage::Decode({}).ok());
}

// --- Registry lifecycle ----------------------------------------------------

TEST(TcpRegistryTest, AcquireTimesOutWhenNobodyDialsIn) {
  RegistryOptions options;
  options.handshake_timeout_ms = 200;
  auto registry = WorkerRegistry::Listen(options);
  ASSERT_TRUE(registry.ok()) << registry.status();
  auto acquired = (*registry)->Acquire(1, dist::TransportOptions{});
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ(acquired.status().code(), StatusCode::kIOError);
  EXPECT_NE(acquired.status().message().find("dialed in"),
            std::string::npos)
      << acquired.status();
}

TEST(TcpRegistryTest, VersionMismatchIsRejectedWithErrorFrame) {
  RegistryOptions options;
  options.handshake_timeout_ms = 300;
  auto registry = WorkerRegistry::Listen(options);
  ASSERT_TRUE(registry.ok()) << registry.status();

  // Dial in by hand and advertise a future protocol version.
  auto conn = dist::TcpDial((*registry)->address(), 2000);
  ASSERT_TRUE(conn.ok()) << conn.status();
  dist::HelloMessage hello;
  hello.protocol_version = dist::kProtocolVersion + 7;
  const dist::TransportOptions transport;
  ASSERT_TRUE(dist::SendMessage(conn->fd(),
                                static_cast<uint32_t>(MessageType::kHello),
                                hello.Encode(), transport, 1)
                  .ok());

  // The registry rejects the connection and keeps waiting for a valid
  // fleet, which never arrives.
  auto acquired = (*registry)->Acquire(1, transport);
  ASSERT_FALSE(acquired.ok());
  EXPECT_EQ((*registry)->handshakes_rejected(), 1);
  EXPECT_EQ((*registry)->handshakes_completed(), 0);

  // The rejected worker received an Error frame saying why.
  auto frame = dist::RecvMessage(conn->fd(), transport);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, static_cast<uint32_t>(MessageType::kError));
}

TEST(TcpRegistryTest, DeadPooledConnectionsAreDroppedNotHandedOut) {
  RegistryOptions options;
  options.handshake_timeout_ms = 300;
  auto registry = WorkerRegistry::Listen(options);
  ASSERT_TRUE(registry.ok()) << registry.status();
  const dist::TransportOptions transport;

  const pid_t pid = ForkTcpWorker((*registry)->address(), transport);
  auto acquired = (*registry)->Acquire(1, transport);
  ASSERT_TRUE(acquired.ok()) << acquired.status();
  ASSERT_EQ(acquired->size(), 1u);
  EXPECT_EQ((*registry)->handshakes_completed(), 1);
  (*registry)->Release(std::move((*acquired)[0]));
  EXPECT_EQ((*registry)->num_pooled(), 1);

  // The pooled worker dies; its connection must be detected and dropped,
  // not handed to the next run.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  auto again = (*registry)->Acquire(1, transport);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kIOError);
  EXPECT_EQ((*registry)->num_pooled(), 0);
}

// --- Full runs over TCP ----------------------------------------------------

TEST(TcpSpinnerTest, BitIdenticalToInProcessAcrossShapes) {
  const CsrGraph g = SmallWorldConverted(1100, 21);
  SpinnerConfig config;
  config.num_partitions = 6;
  config.seed = 7;
  config.max_iterations = 10;
  config.use_halting = false;

  for (const int num_shards : {1, 2, 7}) {
    std::vector<PartitionId> reference_labels;
    auto reference =
        ReferenceRun(config, g, num_shards, &reference_labels);
    ASSERT_TRUE(reference.ok());
    for (const int num_workers : {1, 3}) {
      auto registry = WorkerRegistry::Listen(RegistryOptions{});
      ASSERT_TRUE(registry.ok()) << registry.status();
      MultiProcessOptions options;
      options.num_workers = num_workers;
      options.worker_transport = registry->get();
      std::vector<pid_t> workers;
      for (int w = 0; w < num_workers; ++w) {
        workers.push_back(
            ForkTcpWorker((*registry)->address(), options.transport));
      }

      auto store = ShardedGraphStore::Build(g, num_shards);
      ASSERT_TRUE(store.ok());
      std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
      auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                              options, nullptr);
      ASSERT_TRUE(run.ok())
          << "S=" << num_shards << " W=" << num_workers << ": "
          << run.status();
      EXPECT_EQ(store->labels(), reference_labels)
          << "S=" << num_shards << " W=" << num_workers;
      EXPECT_EQ(run->iterations, reference->iterations);
      EXPECT_EQ(run->converged, reference->converged);
      // The float convergence curves must match bit-for-bit too.
      ASSERT_EQ(run->history.size(), reference->history.size());
      for (size_t i = 0; i < run->history.size(); ++i) {
        EXPECT_EQ(run->history[i].score, reference->history[i].score) << i;
        EXPECT_EQ(run->history[i].phi, reference->history[i].phi) << i;
        EXPECT_EQ(run->history[i].rho, reference->history[i].rho) << i;
        EXPECT_EQ(run->history[i].loads, reference->history[i].loads) << i;
      }

      // A clean run released every connection back to the pool; dropping
      // the registry closes them and the workers exit 0 (idle EOF).
      EXPECT_EQ((*registry)->num_pooled(), num_workers);
      registry->reset();
      for (const pid_t pid : workers) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "worker pid " << pid << " status " << status;
      }
    }
  }
}

TEST(TcpSpinnerTest, WorkerDiesMidSuperstepSurfacesStatusNeverHangs) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.max_iterations = 20;
  config.use_halting = false;
  for (const int fail_worker : {0, 1}) {
    auto registry = WorkerRegistry::Listen(RegistryOptions{});
    ASSERT_TRUE(registry.ok()) << registry.status();
    MultiProcessOptions options;
    options.num_workers = 2;
    options.worker_transport = registry->get();
    options.fail_after_score_steps = 2;  // dies in its 3rd ComputeScores
    options.fail_worker = fail_worker;
    std::vector<pid_t> workers;
    for (int w = 0; w < 2; ++w) {
      workers.push_back(
          ForkTcpWorker((*registry)->address(), options.transport));
    }

    auto store = ShardedGraphStore::Build(g, 4);
    ASSERT_TRUE(store.ok());
    std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
    auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                            options, nullptr);
    ASSERT_FALSE(run.ok()) << "fail_worker=" << fail_worker;
    EXPECT_EQ(run.status().code(), StatusCode::kIOError) << run.status();
    // The error names the worker so operators can find the corpse.
    EXPECT_NE(run.status().message().find("died"), std::string::npos)
        << run.status();
    registry->reset();
    ReapAll(&workers);
  }
}

TEST(TcpSpinnerTest, LostWorkerFailsOverToSurvivorsBitIdentical) {
  // The acceptance scenario: a TCP run loses 1 of 3 workers
  // mid-superstep; with recovery armed the coordinator tears the fleet
  // down to the survivors (no replacement ever dials in), re-carves the
  // dead worker's shard range onto them, replays label state, and
  // finishes byte-identical to the failure-free in-process run.
  const CsrGraph g = SmallWorldConverted(900, 23);
  SpinnerConfig config;
  config.num_partitions = 5;
  config.seed = 3;
  config.max_iterations = 6;
  config.use_halting = false;
  const int kShards = 6;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, kShards, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto registry = WorkerRegistry::Listen(RegistryOptions{});
  ASSERT_TRUE(registry.ok()) << registry.status();
  MultiProcessOptions options;
  options.num_workers = 3;
  options.worker_transport = registry->get();
  options.fail_after_score_steps = 2;  // worker 1 dies mid-superstep
  options.fail_worker = 1;
  options.max_recovery_attempts = 2;
  options.heartbeat_period_ms = 25;
  // Bounds the wait for a replacement that never comes.
  options.rpc_timeout_ms = 1'500;
  std::vector<pid_t> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(
        ForkTcpWorker((*registry)->address(), options.transport));
  }

  auto store = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store.ok());
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(store->labels(), reference_labels);
  EXPECT_EQ(run->iterations, reference->iterations);
  ASSERT_EQ(run->history.size(), reference->history.size());
  for (size_t i = 0; i < run->history.size(); ++i) {
    EXPECT_EQ(run->history[i].score, reference->history[i].score) << i;
    EXPECT_EQ(run->history[i].phi, reference->history[i].phi) << i;
    EXPECT_EQ(run->history[i].rho, reference->history[i].rho) << i;
    EXPECT_EQ(run->history[i].loads, reference->history[i].loads) << i;
  }
  EXPECT_GE(run->wire.recoveries, 1);
  EXPECT_EQ(run->wire.workers_replaced, 0);  // survivors absorbed it

  // The two survivors were released back to the pool; the third is a
  // corpse with exit code 3 (the crash hook).
  EXPECT_EQ((*registry)->num_pooled(), 2);
  registry->reset();
  int crashed = 0;
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    if (WEXITSTATUS(status) == 3) {
      ++crashed;
    } else {
      EXPECT_EQ(WEXITSTATUS(status), 0) << "worker pid " << pid;
    }
  }
  EXPECT_EQ(crashed, 1);
}

TEST(TcpSpinnerTest, ReplacementDialInTakesOverTheDeadWorkersShards) {
  // Failover with a spare: a 4th worker dials in while the fleet is
  // being rebuilt and adopts the dead worker's range — the run completes
  // with a full-strength fleet and workers_replaced records the top-up.
  const CsrGraph g = SmallWorldConverted(900, 23);
  SpinnerConfig config;
  config.num_partitions = 5;
  config.seed = 3;
  config.max_iterations = 6;
  config.use_halting = false;
  const int kShards = 6;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, kShards, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto registry = WorkerRegistry::Listen(RegistryOptions{});
  ASSERT_TRUE(registry.ok()) << registry.status();
  MultiProcessOptions options;
  options.num_workers = 3;
  options.worker_transport = registry->get();
  options.fail_after_score_steps = 1;
  options.fail_worker = 0;
  options.max_recovery_attempts = 2;
  options.heartbeat_period_ms = 25;
  options.rpc_timeout_ms = 10'000;  // plenty for the spare to hande over
  std::vector<pid_t> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(
        ForkTcpWorker((*registry)->address(), options.transport));
  }
  // The spare dials in immediately; it idles in the accept queue until
  // the recovery top-up acquires it.
  workers.push_back(
      ForkTcpWorker((*registry)->address(), options.transport));

  auto store = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store.ok());
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(store->labels(), reference_labels);
  ASSERT_EQ(run->history.size(), reference->history.size());
  for (size_t i = 0; i < run->history.size(); ++i) {
    EXPECT_EQ(run->history[i].score, reference->history[i].score) << i;
    EXPECT_EQ(run->history[i].phi, reference->history[i].phi) << i;
    EXPECT_EQ(run->history[i].rho, reference->history[i].rho) << i;
  }
  EXPECT_GE(run->wire.recoveries, 1);
  EXPECT_EQ(run->wire.workers_replaced, 1);
  EXPECT_EQ((*registry)->num_pooled(), 3);  // 2 survivors + the spare

  registry->reset();
  int crashed = 0;
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    if (WEXITSTATUS(status) == 3) ++crashed;
  }
  EXPECT_EQ(crashed, 1);
}

TEST(TcpSpinnerTest, PooledWorkersResumeWithZeroSliceDownload) {
  const CsrGraph g = SmallWorldConverted(900, 23);
  SpinnerConfig config;
  config.num_partitions = 5;
  config.seed = 3;
  config.max_iterations = 6;
  config.use_halting = false;
  const int kShards = 4;
  const int kWorkers = 2;
  const std::string store_dir =
      testing::TempDir() + "/tcp_resume_store";
  // TempDir is stable across test runs; start from an empty store so the
  // cold-run download assertions hold on re-runs too.
  std::filesystem::remove_all(store_dir);

  auto registry = WorkerRegistry::Listen(RegistryOptions{});
  ASSERT_TRUE(registry.ok()) << registry.status();
  MultiProcessOptions options;
  options.num_workers = kWorkers;
  options.worker_transport = registry->get();
  dist::WorkerLoopOptions loop;
  loop.store_dir = store_dir;
  std::vector<pid_t> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(
        ForkTcpWorker((*registry)->address(), options.transport, loop));
  }

  // Cold run: every slice crosses the wire and lands in the store.
  auto store1 = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store1.ok());
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run1 = dist::RunMultiProcessSpinner(config, &*store1, no_labels,
                                           options, nullptr);
  ASSERT_TRUE(run1.ok()) << run1.status();
  EXPECT_EQ(run1->wire.slices_downloaded, kShards);
  EXPECT_GT(run1->wire.slice_bytes_downloaded, 0);
  EXPECT_EQ(run1->wire.slices_resumed, 0);
  EXPECT_EQ((*registry)->num_pooled(), kWorkers);

  // Warm run over the SAME pooled connections: every Resume fingerprint
  // matches, so the coordinator downloads nothing.
  auto store2 = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store2.ok());
  auto run2 = dist::RunMultiProcessSpinner(config, &*store2, no_labels,
                                           options, nullptr);
  ASSERT_TRUE(run2.ok()) << run2.status();
  EXPECT_EQ(run2->wire.slices_downloaded, 0);
  EXPECT_EQ(run2->wire.slice_bytes_downloaded, 0);
  EXPECT_EQ(run2->wire.slices_resumed, kShards);
  EXPECT_EQ(store2->labels(), store1->labels());
  // Only one fleet ever dialed in.
  EXPECT_EQ((*registry)->handshakes_completed(), kWorkers);

  registry->reset();
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
}

TEST(TcpSpinnerTest, RestartedWorkersResumeFromStoreWithZeroDownload) {
  const CsrGraph g = SmallWorldConverted(900, 29);
  SpinnerConfig config;
  config.num_partitions = 5;
  config.seed = 9;
  config.max_iterations = 6;
  config.use_halting = false;
  const int kShards = 4;
  const int kWorkers = 2;
  const std::string store_dir =
      testing::TempDir() + "/tcp_restart_store";
  std::filesystem::remove_all(store_dir);
  std::vector<PartitionId> labels1;

  {
    auto registry = WorkerRegistry::Listen(RegistryOptions{});
    ASSERT_TRUE(registry.ok()) << registry.status();
    MultiProcessOptions options;
    options.num_workers = kWorkers;
    options.worker_transport = registry->get();
    dist::WorkerLoopOptions loop;
    loop.store_dir = store_dir;
    std::vector<pid_t> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.push_back(
          ForkTcpWorker((*registry)->address(), options.transport, loop));
    }
    auto store = ShardedGraphStore::Build(g, kShards);
    ASSERT_TRUE(store.ok());
    std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
    auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                            options, nullptr);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->wire.slices_downloaded, kShards);
    labels1 = store->labels();

    // Kill the whole fleet — process restart, files survive.
    registry->reset();
    ReapAll(&workers);
  }

  // Fresh workers, fresh registry, same store directory: the Resume
  // fingerprints come off disk (base + delta log) and match, so the
  // restarted fleet re-downloads nothing.
  auto registry = WorkerRegistry::Listen(RegistryOptions{});
  ASSERT_TRUE(registry.ok()) << registry.status();
  MultiProcessOptions options;
  options.num_workers = kWorkers;
  options.worker_transport = registry->get();
  dist::WorkerLoopOptions loop;
  loop.store_dir = store_dir;
  std::vector<pid_t> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(
        ForkTcpWorker((*registry)->address(), options.transport, loop));
  }
  auto store = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store.ok());
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->wire.slices_downloaded, 0);
  EXPECT_EQ(run->wire.slice_bytes_downloaded, 0);
  EXPECT_EQ(run->wire.slices_resumed, kShards);
  EXPECT_EQ(store->labels(), labels1);

  registry->reset();
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
}

TEST(TcpSpinnerTest, CorruptStoreOnRestartRedownloadsOnlyThatSlice) {
  // The failover-resume contract of the persistent store: a replacement
  // (here: restarted) worker whose on-disk copy of one shard is damaged
  // must report a stale fingerprint for it and re-download exactly that
  // slice — the rest of the store still resumes with zero download, and
  // the run's result is unaffected.
  const CsrGraph g = SmallWorldConverted(900, 29);
  SpinnerConfig config;
  config.num_partitions = 5;
  config.seed = 9;
  config.max_iterations = 6;
  config.use_halting = false;
  const int kShards = 4;
  const int kWorkers = 2;
  const std::string store_dir =
      testing::TempDir() + "/tcp_torn_store";
  std::filesystem::remove_all(store_dir);
  std::vector<PartitionId> labels1;

  {
    auto registry = WorkerRegistry::Listen(RegistryOptions{});
    ASSERT_TRUE(registry.ok()) << registry.status();
    MultiProcessOptions options;
    options.num_workers = kWorkers;
    options.worker_transport = registry->get();
    dist::WorkerLoopOptions loop;
    loop.store_dir = store_dir;
    std::vector<pid_t> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.push_back(
          ForkTcpWorker((*registry)->address(), options.transport, loop));
    }
    auto store = ShardedGraphStore::Build(g, kShards);
    ASSERT_TRUE(store.ok());
    std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
    auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                            options, nullptr);
    ASSERT_TRUE(run.ok()) << run.status();
    labels1 = store->labels();
    registry->reset();
    ReapAll(&workers);
  }

  // Damage shard 0's base mid-file (a torn write, not just an appended
  // tail — appended garbage on the delta log is ignored by design and
  // costs no download). Load() rolls this back to "absent".
  {
    dist::PersistentShardStore probe(store_dir);
    std::FILE* f = std::fopen(probe.BasePath(0).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    std::fputc(0xff, f);
    std::fclose(f);
  }

  auto registry = WorkerRegistry::Listen(RegistryOptions{});
  ASSERT_TRUE(registry.ok()) << registry.status();
  MultiProcessOptions options;
  options.num_workers = kWorkers;
  options.worker_transport = registry->get();
  dist::WorkerLoopOptions loop;
  loop.store_dir = store_dir;
  std::vector<pid_t> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(
        ForkTcpWorker((*registry)->address(), options.transport, loop));
  }
  auto store = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store.ok());
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->wire.slices_downloaded, 1);
  EXPECT_EQ(run->wire.slices_resumed, kShards - 1);
  EXPECT_EQ(store->labels(), labels1);

  registry->reset();
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
}

TEST(TcpSpinnerTest, CapacityWeightsSkewTheShardSplit) {
  const CsrGraph g = SmallWorldConverted(1600, 31);
  SpinnerConfig config;
  config.num_partitions = 4;
  config.seed = 5;
  config.max_iterations = 4;
  config.use_halting = false;
  const int kShards = 6;

  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, kShards, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto registry = WorkerRegistry::Listen(RegistryOptions{});
  ASSERT_TRUE(registry.ok()) << registry.status();
  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = registry->get();
  // One worker advertises triple capacity. Assignment skews toward it —
  // but capacity is pure execution shape, so results cannot move.
  std::vector<pid_t> workers;
  dist::WorkerLoopOptions big;
  big.capacity = 3;
  workers.push_back(
      ForkTcpWorker((*registry)->address(), options.transport, big));
  workers.push_back(
      ForkTcpWorker((*registry)->address(), options.transport));

  auto store = ShardedGraphStore::Build(g, kShards);
  ASSERT_TRUE(store.ok());
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(store->labels(), reference_labels);

  registry->reset();
  ReapAll(&workers);
}

// --- Elastic worker fleet --------------------------------------------------

TEST(TcpElasticTest, DrainAndTopUpRoundTripStaysBitIdentical) {
  // Delay-only wire faults (PR-9 chaos machinery): bytes are preserved,
  // so the whole elastic sequence must still be bit-identical.
  ASSERT_EQ(::setenv("SPINNER_FAULT_PLAN", "seed=5;delay:p=0.15:ms=1", 1), 0);
  auto ws = WattsStrogatz(600, 3, 0.3, 13);
  ASSERT_TRUE(ws.ok());
  SpinnerConfig config;
  config.num_partitions = 4;
  config.seed = 3;
  config.max_iterations = 8;
  config.use_halting = false;

  // The in-process reference of the same lifecycle, staged.
  const GraphDelta delta =
      RandomEdgeAdditions(ws->num_vertices, ws->edges, 40, /*seed=*/7);
  PartitioningSession reference(config);
  ASSERT_TRUE(reference.Open(ws->num_vertices, ws->edges, true).ok());
  const std::vector<PartitionId> after_open = reference.assignment();
  ASSERT_TRUE(reference.ApplyDelta(delta).ok());
  const std::vector<PartitionId> after_delta = reference.assignment();
  ASSERT_TRUE(reference.Rescale(5).ok());
  const std::vector<PartitionId> after_rescale = reference.assignment();

  std::vector<pid_t> workers;
  {
    SessionOptions options;
    options.execution.mode = ExecutionMode::kTcp;
    options.execution.num_workers = 2;
    options.execution.listen_address = "127.0.0.1:0";
    PartitioningSession session(config, options);
    auto address = session.TcpAddress();
    ASSERT_TRUE(address.ok()) << address.status();
    const dist::TransportOptions transport;
    for (int w = 0; w < 2; ++w) {
      workers.push_back(ForkTcpWorker(*address, transport));
    }
    ASSERT_TRUE(session.Open(ws->num_vertices, ws->edges, true).ok());
    EXPECT_EQ(session.assignment(), after_open);
    EXPECT_EQ(session.num_workers(), 2);

    // Scale the fleet in: the drained pooled connection gets EOF and its
    // worker exits 0 — the clean decommission path.
    ASSERT_TRUE(session.ResizeWorkers(1).ok());
    EXPECT_EQ(session.num_workers(), 1);
    int status = 0;
    const pid_t drained = ::waitpid(-1, &status, 0);
    ASSERT_GT(drained, 0);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "drained worker status " << status;
    workers.erase(std::find(workers.begin(), workers.end(), drained));

    // The next lifecycle call runs on the shrunken fleet, bit-identical.
    const Status applied = session.ApplyDelta(delta);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    EXPECT_EQ(session.assignment(), after_delta);

    // Top the fleet back up: no registry verb needed, the next Acquire
    // waits for the fresh dial-in.
    ASSERT_TRUE(session.ResizeWorkers(2).ok());
    EXPECT_EQ(session.num_workers(), 2);
    workers.push_back(ForkTcpWorker(*address, transport));
    ASSERT_TRUE(session.Rescale(5).ok());
    EXPECT_EQ(session.assignment(), after_rescale);
    EXPECT_EQ(session.num_partitions(), 5);
  }
  // Session teardown closed the pool; the remaining workers exit 0.
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker pid " << pid << " status " << status;
  }
  ASSERT_EQ(::unsetenv("SPINNER_FAULT_PLAN"), 0);
}

}  // namespace
}  // namespace spinner
