// PartitionerRegistry: uniform construction of every implementation by
// name, capability probing, and equivalence of the "spinner" adapter with
// the direct SpinnerPartitioner entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/partitioner_registry.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/metrics.h"
#include "spinner/partitioner.h"
#include "spinner/spinner_graph_partitioner.h"

namespace spinner {
namespace {

CsrGraph SmallGraph() {
  auto ws = WattsStrogatz(300, 4, 0.3, 11);
  SPINNER_CHECK(ws.ok());
  auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

TEST(PartitionerRegistryTest, AllBuiltinsAreRegistered) {
  const std::vector<std::string> names = PartitionerRegistry::Names();
  const std::set<std::string> name_set(names.begin(), names.end());
  for (const char* expected : {"hash", "random", "ldg", "fennel",
                               "restreaming", "multilevel", "spinner"}) {
    EXPECT_TRUE(name_set.count(expected)) << "missing " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PartitionerRegistryTest, EveryRegisteredNamePartitionsASmallGraph) {
  const CsrGraph g = SmallGraph();
  const int k = 4;
  for (const std::string& name : PartitionerRegistry::Names()) {
    auto partitioner = PartitionerRegistry::Create(name);
    ASSERT_TRUE(partitioner.ok()) << name << ": " << partitioner.status();
    auto labels = (*partitioner)->Partition(g, k);
    ASSERT_TRUE(labels.ok()) << name << ": " << labels.status();
    ASSERT_EQ(static_cast<int64_t>(labels->size()), g.NumVertices())
        << name;
    for (PartitionId l : *labels) {
      ASSERT_GE(l, 0) << name;
      ASSERT_LT(l, k) << name;
    }
  }
}

TEST(PartitionerRegistryTest, UnknownNameIsNotFoundAndListsKnownNames) {
  auto p = PartitionerRegistry::Create("metis");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
  EXPECT_NE(p.status().message().find("spinner"), std::string::npos)
      << p.status();
}

TEST(PartitionerRegistryTest, DuplicateRegistrationIsRejected) {
  PartitionerRegistry::Names();  // force built-in registration first
  EXPECT_FALSE(PartitionerRegistry::Register(
      "hash", [](const PartitionerOptions&)
                  -> Result<std::unique_ptr<GraphPartitioner>> {
        return Status::Internal("never called");
      }));
}

TEST(PartitionerRegistryTest, CapabilitiesMatchImplementations) {
  auto spinner_p = PartitionerRegistry::Create("spinner");
  ASSERT_TRUE(spinner_p.ok());
  EXPECT_TRUE((*spinner_p)->SupportsRepartition());
  EXPECT_TRUE((*spinner_p)->SupportsRescale());

  auto restreaming = PartitionerRegistry::Create("restreaming");
  ASSERT_TRUE(restreaming.ok());
  EXPECT_TRUE((*restreaming)->SupportsRepartition());
  EXPECT_FALSE((*restreaming)->SupportsRescale());

  auto hash = PartitionerRegistry::Create("hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_FALSE((*hash)->SupportsRepartition());
  EXPECT_FALSE((*hash)->SupportsRescale());
  const CsrGraph g = SmallGraph();
  std::vector<PartitionId> previous(g.NumVertices(), 0);
  auto repartitioned = (*hash)->Repartition(g, 4, previous);
  ASSERT_FALSE(repartitioned.ok());
  EXPECT_EQ(repartitioned.status().code(), StatusCode::kUnimplemented);
  auto rescaled = (*hash)->Rescale(g, previous, 4, 6);
  ASSERT_FALSE(rescaled.ok());
  EXPECT_EQ(rescaled.status().code(), StatusCode::kUnimplemented);
}

TEST(PartitionerRegistryTest, SpinnerAdapterMatchesDirectEntryPoints) {
  const CsrGraph g = SmallGraph();
  const int k = 4;
  PartitionerOptions options;
  options.spinner.num_workers = 2;
  auto adapter = PartitionerRegistry::Create("spinner", options);
  ASSERT_TRUE(adapter.ok());

  SpinnerConfig config = options.spinner;
  config.num_partitions = k;
  SpinnerPartitioner direct(config);

  // Scratch partitioning: identical assignment for identical seed.
  auto via_registry = (*adapter)->Partition(g, k);
  auto via_direct = direct.Partition(g);
  ASSERT_TRUE(via_registry.ok() && via_direct.ok());
  EXPECT_EQ(*via_registry, via_direct->assignment);

  // Repartition and Rescale shims agree too.
  auto adapted = (*adapter)->Repartition(g, k, *via_registry);
  auto adapted_direct = direct.Repartition(g, via_direct->assignment);
  ASSERT_TRUE(adapted.ok() && adapted_direct.ok());
  EXPECT_EQ(*adapted, adapted_direct->assignment);

  auto rescaled = (*adapter)->Rescale(g, *via_registry, k, k + 2);
  auto rescaled_direct = direct.Rescale(g, via_direct->assignment, k + 2);
  ASSERT_TRUE(rescaled.ok() && rescaled_direct.ok());
  EXPECT_EQ(*rescaled, rescaled_direct->assignment);
}

TEST(PartitionerRegistryTest, ExecutionShapeOptionsPlumbThroughToSpinner) {
  // --shards/--threads style options reach the spinner factory and never
  // change the computed assignment (the substrate's invariance guarantee).
  auto ws = WattsStrogatz(900, 3, 0.3, 13);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  PartitionerOptions one;
  one.num_shards = 1;
  one.num_threads = 1;
  PartitionerOptions many;
  many.num_shards = 6;
  many.num_threads = 3;
  auto a = PartitionerRegistry::Create("spinner", one);
  auto b = PartitionerRegistry::Create("spinner", many);
  ASSERT_TRUE(a.ok() && b.ok());
  auto labels_a = (*a)->Partition(*g, 5);
  auto labels_b = (*b)->Partition(*g, 5);
  ASSERT_TRUE(labels_a.ok() && labels_b.ok());
  EXPECT_EQ(*labels_a, *labels_b);
}

TEST(PartitionerRegistryTest, RestreamingRepartitionHandlesGrowth) {
  auto ws = WattsStrogatz(200, 3, 0.2, 5);
  ASSERT_TRUE(ws.ok());
  auto small = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(small.ok());
  auto restreaming = PartitionerRegistry::Create("restreaming");
  ASSERT_TRUE(restreaming.ok());
  auto labels = (*restreaming)->Partition(*small, 4);
  ASSERT_TRUE(labels.ok());

  // Grow the graph by 10 vertices chained onto vertex 0.
  EdgeList grown_edges = ws->edges;
  for (int64_t i = 0; i < 10; ++i) {
    grown_edges.push_back({200 + i, i});
  }
  auto grown = BuildSymmetric(210, grown_edges);
  ASSERT_TRUE(grown.ok());
  auto adapted = (*restreaming)->Repartition(*grown, 4, *labels);
  ASSERT_TRUE(adapted.ok()) << adapted.status();
  ASSERT_EQ(adapted->size(), 210u);
  for (PartitionId l : *adapted) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 4);
  }
}

}  // namespace
}  // namespace spinner
