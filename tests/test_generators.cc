#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/stats.h"

namespace spinner {
namespace {

bool NoSelfLoops(const EdgeList& edges) {
  return std::none_of(edges.begin(), edges.end(),
                      [](const Edge& e) { return e.src == e.dst; });
}

bool NoDuplicateUndirected(EdgeList edges) {
  for (Edge& e : edges) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  const size_t before = edges.size();
  SortAndDedup(&edges);
  return edges.size() == before;
}

TEST(WattsStrogatzTest, SizeAndDegree) {
  auto g = WattsStrogatz(1000, 5, 0.3, 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices, 1000);
  EXPECT_EQ(static_cast<int64_t>(g->edges.size()), 1000 * 5);
  EXPECT_FALSE(g->directed);
  EXPECT_TRUE(NoSelfLoops(g->edges));
  EXPECT_TRUE(EdgesInRange(g->edges, 1000));
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  auto g = WattsStrogatz(10, 2, 0.0, 1);
  ASSERT_TRUE(g.ok());
  EdgeList expected;
  for (VertexId v = 0; v < 10; ++v) {
    expected.push_back({v, (v + 1) % 10});
    expected.push_back({v, (v + 2) % 10});
  }
  EdgeList got = g->edges;
  SortAndDedup(&got);
  SortAndDedup(&expected);
  EXPECT_EQ(got, expected);
}

TEST(WattsStrogatzTest, DeterministicInSeed) {
  auto a = WattsStrogatz(500, 4, 0.3, 9);
  auto b = WattsStrogatz(500, 4, 0.3, 9);
  auto c = WattsStrogatz(500, 4, 0.3, 10);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->edges, b->edges);
  EXPECT_NE(a->edges, c->edges);
}

TEST(WattsStrogatzTest, RewiringChangesEdges) {
  auto lattice = WattsStrogatz(200, 3, 0.0, 1);
  auto rewired = WattsStrogatz(200, 3, 0.5, 1);
  ASSERT_TRUE(lattice.ok() && rewired.ok());
  EXPECT_NE(lattice->edges, rewired->edges);
  EXPECT_EQ(lattice->edges.size(), rewired->edges.size());
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  EXPECT_FALSE(WattsStrogatz(2, 1, 0.3, 1).ok());
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.3, 1).ok());
  EXPECT_FALSE(WattsStrogatz(10, 5, 0.3, 1).ok());   // 2*5 >= 10
  EXPECT_FALSE(WattsStrogatz(10, 2, -0.1, 1).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.1, 1).ok());
}

TEST(BarabasiAlbertTest, SizeAndHubs) {
  auto g = BarabasiAlbert(2000, 5, 5, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices, 2000);
  EXPECT_TRUE(NoSelfLoops(g->edges));
  EXPECT_TRUE(NoDuplicateUndirected(g->edges));
  // Preferential attachment must produce hubs: the max degree should be
  // far above the mean (power-law-ish skew).
  auto csr = BuildSymmetric(g->num_vertices, g->edges);
  ASSERT_TRUE(csr.ok());
  auto stats = ComputeGraphStats(*csr);
  EXPECT_GT(static_cast<double>(stats.max_degree), 5.0 * stats.mean_degree);
}

TEST(BarabasiAlbertTest, DeterministicInSeed) {
  auto a = BarabasiAlbert(300, 3, 2, 5);
  auto b = BarabasiAlbert(300, 3, 2, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->edges, b->edges);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  EXPECT_FALSE(BarabasiAlbert(10, 1, 1, 1).ok());   // m0 < 2
  EXPECT_FALSE(BarabasiAlbert(10, 3, 4, 1).ok());   // m > m0
  EXPECT_FALSE(BarabasiAlbert(2, 3, 2, 1).ok());    // n < m0
}

TEST(ErdosRenyiTest, ExactEdgeCount) {
  auto g = ErdosRenyi(100, 500, 11);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->edges.size(), 500u);
  EXPECT_TRUE(NoSelfLoops(g->edges));
  EXPECT_TRUE(NoDuplicateUndirected(g->edges));
}

TEST(ErdosRenyiTest, CompleteGraphBoundary) {
  auto g = ErdosRenyi(5, 10, 1);  // 10 = C(5,2): the complete graph
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->edges.size(), 10u);
  EXPECT_FALSE(ErdosRenyi(5, 11, 1).ok());  // over the maximum
}

TEST(RMatTest, SizeSkewAndDeterminism) {
  auto g = RMat(10, 8, 0.57, 0.19, 0.19, 13);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices, 1024);
  EXPECT_EQ(static_cast<int64_t>(g->edges.size()), 1024 * 8);
  EXPECT_TRUE(g->directed);
  EXPECT_TRUE(NoSelfLoops(g->edges));
  auto h = RMat(10, 8, 0.57, 0.19, 0.19, 13);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(g->edges, h->edges);
}

TEST(RMatTest, RejectsBadParameters) {
  EXPECT_FALSE(RMat(0, 8, 0.25, 0.25, 0.25, 1).ok());
  EXPECT_FALSE(RMat(5, 0, 0.25, 0.25, 0.25, 1).ok());
  EXPECT_FALSE(RMat(5, 4, 0.6, 0.3, 0.2, 1).ok());  // sums > 1
}

TEST(PlantedPartitionTest, CommunityStructure) {
  auto g = PlantedPartition(4, 50, 0.4, 0.01, 17);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices, 200);
  // Count intra- vs inter-block edges: intra must dominate heavily.
  int64_t intra = 0;
  int64_t inter = 0;
  for (const Edge& e : g->edges) {
    (e.src / 50 == e.dst / 50 ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 5 * inter);
}

TEST(PlantedPartitionTest, ProbabilityZeroAndOne) {
  auto none = PlantedPartition(2, 10, 0.0, 0.0, 1);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->edges.empty());
  auto full = PlantedPartition(1, 10, 1.0, 0.0, 1);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->edges.size(), 45u);  // C(10,2)
}

TEST(DeterministicGraphsTest, Shapes) {
  EXPECT_EQ(Ring(5).edges.size(), 5u);
  EXPECT_EQ(Path(5).edges.size(), 4u);
  EXPECT_EQ(Star(5).edges.size(), 5u);
  EXPECT_EQ(Star(5).num_vertices, 6);
  EXPECT_EQ(Complete(5).edges.size(), 10u);
  EXPECT_EQ(Grid(3, 4).edges.size(), 3u * 3 + 2 * 4);  // 17
  EXPECT_EQ(Grid(3, 4).num_vertices, 12);
}

}  // namespace
}  // namespace spinner
