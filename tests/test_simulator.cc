// Cost model and cluster simulator: the pricing rules, and the headline
// §V.F effect — Spinner placement beats hash placement because it converts
// remote messages into local ones and balances worker load.
#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "simulator/cluster_simulator.h"
#include "spinner/partitioner.h"

namespace spinner::sim {
namespace {

pregel::RunStats TwoStepStats(int workers) {
  // Hand-built stats: superstep 0 computes and sends, superstep 1 ingests.
  pregel::RunStats stats;
  pregel::SuperstepStats s0;
  s0.superstep = 0;
  s0.worker_vertices_computed = {10, 20};
  s0.worker_edges_scanned = {100, 200};
  s0.worker_messages_in = {50, 70};          // ingested at barrier 0
  s0.worker_remote_messages_in = {30, 0};
  s0.worker_messages_out = {60, 60};
  s0.messages_sent = 120;
  s0.messages_remote = 30;
  s0.messages_local = 90;
  stats.per_superstep.push_back(s0);

  pregel::SuperstepStats s1;
  s1.superstep = 1;
  s1.worker_vertices_computed = {10, 20};
  s1.worker_edges_scanned = {100, 200};
  s1.worker_messages_in = {0, 0};
  s1.worker_remote_messages_in = {0, 0};
  s1.worker_messages_out = {0, 0};
  stats.per_superstep.push_back(s1);
  stats.supersteps = 2;
  (void)workers;
  return stats;
}

TEST(CostModelTest, ChargesComputeAndMessagesAtProcessingTime) {
  CostModel model;
  model.per_vertex_us = 1.0;
  model.per_edge_us = 0.1;
  model.per_local_message_us = 0.5;
  model.per_remote_message_us = 5.0;
  model.barrier_us = 100.0;

  auto result = Simulate(TwoStepStats(2), model);
  ASSERT_EQ(result.supersteps.size(), 2u);

  // Superstep 0: compute only (no prior messages).
  const auto& s0 = result.supersteps[0];
  EXPECT_NEAR(s0.worker_seconds[0], (10 * 1.0 + 100 * 0.1) * 1e-6, 1e-12);
  EXPECT_NEAR(s0.worker_seconds[1], (20 * 1.0 + 200 * 0.1) * 1e-6, 1e-12);
  // Superstep duration = slowest worker + barrier.
  EXPECT_NEAR(s0.superstep_seconds, 40e-6 + 100e-6, 1e-12);

  // Superstep 1: compute + messages ingested at the previous barrier.
  const auto& s1 = result.supersteps[1];
  // Worker 0: 20 compute + (50-30) local * 0.5 + 30 remote * 5 = 180 us.
  EXPECT_NEAR(s1.worker_seconds[0], (20.0 + 10.0 + 150.0) * 1e-6, 1e-12);
  // Worker 1: 40 compute + 70 local * 0.5 = 75 us.
  EXPECT_NEAR(s1.worker_seconds[1], (40.0 + 35.0) * 1e-6, 1e-12);

  EXPECT_EQ(result.total_messages, 120);
  EXPECT_EQ(result.remote_messages, 30);
  EXPECT_NEAR(result.total_seconds,
              s0.superstep_seconds + s1.superstep_seconds, 1e-12);
}

TEST(CostModelTest, MeanMinTrackWorkers) {
  CostModel model;
  model.per_vertex_us = 1.0;
  model.per_edge_us = 0.0;
  model.barrier_us = 0.0;
  auto result = Simulate(TwoStepStats(2), model);
  const auto& s0 = result.supersteps[0];
  EXPECT_NEAR(s0.mean_worker_seconds, 15e-6, 1e-12);
  EXPECT_NEAR(s0.min_worker_seconds, 10e-6, 1e-12);
  EXPECT_EQ(result.mean_stats.count(), 2);
  EXPECT_EQ(result.max_stats.count(), 2);
}

TEST(CostModelTest, EmptyRunIsZero) {
  auto result = Simulate(pregel::RunStats{}, CostModel{});
  EXPECT_DOUBLE_EQ(result.total_seconds, 0.0);
  EXPECT_TRUE(result.supersteps.empty());
}

// --- End-to-end: placement quality shows up in simulated time ------------

TEST(ClusterSimulatorTest, SpinnerPlacementBeatsHashForPageRank) {
  auto ws = WattsStrogatz(1200, 5, 0.2, 33);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());
  const int workers = 8;

  SpinnerConfig config;
  config.num_partitions = workers;
  config.num_workers = 4;
  SpinnerPartitioner partitioner(config);
  auto partition = partitioner.Partition(*g);
  ASSERT_TRUE(partition.ok());

  auto run_with = [&](pregel::Placement placement) {
    apps::PageRankProgram program(15);
    return RunOnCluster<apps::PageRankVertex, char, double>(
        *g, workers, std::move(placement), program,
        [](VertexId) { return apps::PageRankVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
  };

  auto hash_run = run_with(pregel::HashPlacement(workers));
  auto spinner_run =
      run_with(pregel::LabelPlacement(partition->assignment, workers));

  // Same computation, fewer remote messages, faster simulated run.
  EXPECT_EQ(hash_run.simulation.total_messages,
            spinner_run.simulation.total_messages);
  EXPECT_LT(spinner_run.simulation.remote_messages,
            hash_run.simulation.remote_messages / 2);
  EXPECT_LT(spinner_run.simulation.total_seconds,
            hash_run.simulation.total_seconds);
}

TEST(ClusterSimulatorTest, ResultsUnaffectedByPlacement) {
  // Placement changes performance, never results: BSP semantics.
  auto ws = WattsStrogatz(200, 3, 0.3, 2);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  auto ranks_with = [&](pregel::Placement placement) {
    pregel::EngineConfig config;
    config.num_workers = 5;
    apps::PageRankEngine engine(
        *g, config, std::move(placement),
        [](VertexId) { return apps::PageRankVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    apps::PageRankProgram program(10);
    engine.Run(program);
    std::vector<double> ranks;
    engine.ForEachVertex([&](VertexId, const apps::PageRankVertex& v) {
      ranks.push_back(v.rank);
    });
    return ranks;
  };

  const auto a = ranks_with(pregel::HashPlacement(5));
  const auto b = ranks_with(pregel::BlockPlacement(200, 5));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Combiner summation order differs with placement; values agree up to
    // floating-point associativity.
    EXPECT_NEAR(a[i], b[i], 1e-9) << "vertex " << i;
  }
}

}  // namespace
}  // namespace spinner::sim
