// Elastic repartitioning (§III.E): changing k without restarting from
// scratch. Balance must recover at the new k and most vertices must stay.
#include <gtest/gtest.h>

#include <set>

#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

namespace spinner {
namespace {

CsrGraph MakeGraph() {
  auto ws = WattsStrogatz(800, 4, 0.3, 19);
  SPINNER_CHECK(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(g.ok());
  return std::move(g).value();
}

SpinnerConfig BaseConfig(int k = 8) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = 4;
  return config;
}

TEST(SpinnerElasticTest, ExpandRebalancesOntoNewPartitions) {
  CsrGraph g = MakeGraph();
  SpinnerPartitioner partitioner(BaseConfig(8));
  auto initial = partitioner.Partition(g);
  ASSERT_TRUE(initial.ok());

  auto expanded = partitioner.Rescale(g, initial->assignment, 10);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->num_partitions, 10);

  std::set<PartitionId> used(expanded->assignment.begin(),
                             expanded->assignment.end());
  EXPECT_EQ(used.size(), 10u);  // new partitions actually populated
  // Balance at the new k (the whole point of Eq. 11's migration rate).
  EXPECT_LE(expanded->metrics.rho, 1.05 + 0.12);
  // Locality must survive the disruption (paper: "the locality of those
  // vertices that do not migrate is not completely destroyed").
  EXPECT_GT(expanded->metrics.phi, 0.25);
}

TEST(SpinnerElasticTest, ExpandIsMoreStableThanScratch) {
  CsrGraph g = MakeGraph();
  SpinnerPartitioner partitioner(BaseConfig(8));
  auto initial = partitioner.Partition(g);
  ASSERT_TRUE(initial.ok());

  auto expanded = partitioner.Rescale(g, initial->assignment, 9);
  ASSERT_TRUE(expanded.ok());
  SpinnerConfig scratch_config = BaseConfig(9);
  scratch_config.seed = 777;  // a fresh run, not a replay
  SpinnerPartitioner scratch_partitioner(scratch_config);
  auto scratch = scratch_partitioner.Partition(g);
  ASSERT_TRUE(scratch.ok());

  auto elastic_diff =
      PartitioningDifference(initial->assignment, expanded->assignment);
  auto scratch_diff =
      PartitioningDifference(initial->assignment, scratch->assignment);
  ASSERT_TRUE(elastic_diff.ok() && scratch_diff.ok());
  // Paper Fig. 8b: +1 partition moves <17% adaptively vs ~96% from scratch.
  EXPECT_LT(*elastic_diff, 0.55);
  EXPECT_GT(*scratch_diff, 0.70);
  EXPECT_LT(*elastic_diff, *scratch_diff);
}

TEST(SpinnerElasticTest, ShrinkEvacuatesRemovedPartitions) {
  CsrGraph g = MakeGraph();
  SpinnerPartitioner partitioner(BaseConfig(8));
  auto initial = partitioner.Partition(g);
  ASSERT_TRUE(initial.ok());

  auto shrunk = partitioner.Rescale(g, initial->assignment, 5);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(shrunk->num_partitions, 5);
  for (PartitionId l : shrunk->assignment) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 5);
  }
  EXPECT_LE(shrunk->metrics.rho, 1.05 + 0.12);
}

TEST(SpinnerElasticTest, SameKContinuesFromPrevious) {
  CsrGraph g = MakeGraph();
  SpinnerPartitioner partitioner(BaseConfig(8));
  auto initial = partitioner.Partition(g);
  ASSERT_TRUE(initial.ok());

  auto same = partitioner.Rescale(g, initial->assignment, 8);
  ASSERT_TRUE(same.ok());
  auto diff = PartitioningDifference(initial->assignment, same->assignment);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(*diff, 0.30);  // steady state: little churn
}

TEST(SpinnerElasticTest, RejectsIncompletePrevious) {
  CsrGraph g = MakeGraph();
  SpinnerPartitioner partitioner(BaseConfig(8));
  std::vector<PartitionId> partial(10, 0);  // graph has 800 vertices
  EXPECT_FALSE(partitioner.Rescale(g, partial, 10).ok());
}

}  // namespace
}  // namespace spinner
