#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spinner {
namespace {

TEST(SampleStatsTest, EmptyIsAllZero) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 3.5);
}

TEST(SampleStatsTest, KnownMoments) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
  // Sample stddev with n-1: variance = 32/7.
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 25.0);
  // Adding after a percentile query must invalidate the sort cache.
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
}

TEST(SampleStatsTest, ClearResets) {
  SampleStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SampleStatsTest, NegativeValues) {
  SampleStats s;
  s.Add(-5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), -5.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
}

}  // namespace
}  // namespace spinner
