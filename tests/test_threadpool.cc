#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace spinner {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> x{0};
  pool.Submit([&x] { x = 7; });
  pool.Wait();
  EXPECT_EQ(x.load(), 7);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, 1000, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  int touched = 0;
  ParallelFor(&pool, 5, 5, [&touched](int64_t) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 10, 20, [&sum](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10+11+...+19
}

TEST(ParallelForChunkedTest, ChunksAreDisjointAndCover) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> chunks_seen{0};
  ParallelForChunked(&pool, 0, 100, 7,
                     [&](int /*chunk*/, int64_t lo, int64_t hi) {
                       chunks_seen.fetch_add(1);
                       for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
                     });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LE(chunks_seen.load(), 7);
  EXPECT_GE(chunks_seen.load(), 1);
}

TEST(ParallelForChunkedTest, MoreChunksThanItems) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ParallelForChunked(&pool, 0, 3, 100,
                     [&](int, int64_t lo, int64_t hi) {
                       count.fetch_add(static_cast<int>(hi - lo));
                     });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace spinner
