#include "common/cli.h"

#include <gtest/gtest.h>

namespace spinner {
namespace {

CommandLine Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  CommandLine cli;
  EXPECT_TRUE(
      cli.Parse(static_cast<int>(args.size()), args.data()).ok());
  return cli;
}

TEST(CommandLineTest, EqualsForm) {
  auto cli = Parse({"--k=32", "--c=1.05", "--name=twitter"});
  EXPECT_EQ(cli.GetInt("k", 0), 32);
  EXPECT_DOUBLE_EQ(cli.GetDouble("c", 0), 1.05);
  EXPECT_EQ(cli.GetString("name", ""), "twitter");
}

TEST(CommandLineTest, SpaceForm) {
  auto cli = Parse({"--k", "8", "--name", "lj"});
  EXPECT_EQ(cli.GetInt("k", 0), 8);
  EXPECT_EQ(cli.GetString("name", ""), "lj");
}

TEST(CommandLineTest, BareBooleanFlag) {
  auto cli = Parse({"--verbose", "--k=2"});
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_FALSE(cli.GetBool("quiet", false));
  EXPECT_TRUE(cli.GetBool("quiet", true));
}

TEST(CommandLineTest, DefaultsWhenAbsent) {
  auto cli = Parse({});
  EXPECT_EQ(cli.GetInt("k", 64), 64);
  EXPECT_DOUBLE_EQ(cli.GetDouble("c", 1.05), 1.05);
  EXPECT_EQ(cli.GetString("s", "d"), "d");
  EXPECT_FALSE(cli.Has("k"));
}

TEST(CommandLineTest, HasDetectsPresence) {
  auto cli = Parse({"--x=1"});
  EXPECT_TRUE(cli.Has("x"));
  EXPECT_FALSE(cli.Has("y"));
}

TEST(CommandLineTest, BoolValueSpellings) {
  auto cli = Parse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(cli.GetBool("a", false));
  EXPECT_TRUE(cli.GetBool("b", false));
  EXPECT_TRUE(cli.GetBool("c", false));
  EXPECT_FALSE(cli.GetBool("d", true));
  EXPECT_FALSE(cli.GetBool("e", true));
}

TEST(CommandLineTest, EmptyFlagNameIsError) {
  const char* argv[] = {"prog", "--"};
  CommandLine cli;
  EXPECT_FALSE(cli.Parse(2, argv).ok());
}

TEST(CommandLineTest, LaterValueWins) {
  auto cli = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(cli.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace spinner
