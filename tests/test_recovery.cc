// Failure detection and recovery for the cross-process execution modes:
// the FaultPlan syntax, the FaultInjectingTransport chaos proxy, and the
// central robustness guarantee — a run that loses a worker mid-superstep
// (crash, dropped reply, corrupt stream, or closed connection) detects
// the failure within the rpc deadline, rebuilds its fleet, replays the
// checkpointed label state, and finishes with assignments and float
// φ/ρ/score histories bit-identical to a failure-free run. With recovery
// disabled (the default) the same faults surface as clean Statuses —
// never hangs — preserving the pre-recovery contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "dist/coordinator.h"
#include "dist/fault_injection.h"
#include "dist/registry.h"
#include "dist/transport.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "graph/sharded_store.h"
#include "spinner/sharded_program.h"

namespace spinner {
namespace {

using dist::FaultAction;
using dist::FaultDirection;
using dist::FaultInjectingTransport;
using dist::FaultPlan;
using dist::MultiProcessOptions;

CsrGraph SmallWorldConverted(int64_t n, uint64_t seed = 11) {
  auto ws = WattsStrogatz(n, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

/// One in-process reference run over a fresh store.
Result<ShardedRunResult> ReferenceRun(const SpinnerConfig& config,
                                      const CsrGraph& g, int num_shards,
                                      std::vector<PartitionId>* labels) {
  auto store = ShardedGraphStore::Build(g, num_shards);
  if (!store.ok()) return store.status();
  ThreadPool pool(2);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = RunShardedSpinner(config, &*store, no_labels, &pool, nullptr);
  if (run.ok()) *labels = store->labels();
  return run;
}

/// The config every recovery test runs: small graph, fixed schedule (no
/// halting) so reference and recovered runs walk identical iterations.
SpinnerConfig RecoveryConfig() {
  SpinnerConfig config;
  config.num_partitions = 4;
  config.seed = 7;
  config.max_iterations = 6;
  config.use_halting = false;
  return config;
}

/// Recovery knobs tuned for tests: tight deadlines so a dropped reply is
/// declared within ~a second, near-zero backoff between attempts.
void ArmRecovery(MultiProcessOptions* options, int attempts) {
  options->rpc_timeout_ms = 2'000;
  options->heartbeat_period_ms = 25;
  options->max_recovery_attempts = attempts;
}

/// Asserts a recovered run reproduced the failure-free reference
/// bit-for-bit: assignment, iteration count, and every float in the
/// convergence history.
void ExpectBitIdentical(const ShardedRunResult& run,
                        const ShardedRunResult& reference,
                        const std::vector<PartitionId>& labels,
                        const std::vector<PartitionId>& reference_labels) {
  EXPECT_EQ(labels, reference_labels);
  EXPECT_EQ(run.iterations, reference.iterations);
  EXPECT_EQ(run.converged, reference.converged);
  ASSERT_EQ(run.history.size(), reference.history.size());
  for (size_t i = 0; i < run.history.size(); ++i) {
    EXPECT_EQ(run.history[i].score, reference.history[i].score) << i;
    EXPECT_EQ(run.history[i].phi, reference.history[i].phi) << i;
    EXPECT_EQ(run.history[i].rho, reference.history[i].rho) << i;
    EXPECT_EQ(run.history[i].loads, reference.history[i].loads) << i;
  }
}

// --- FaultPlan parsing -----------------------------------------------------

TEST(FaultPlanTest, ParsesTheCompactSyntax) {
  auto plan = FaultPlan::Parse(
      "seed=42;drop:dir=w2c:worker=1:frame=12;"
      "delay:p=0.25:ms=3;corrupt:dir=c2w:frame=0;close:worker=0:frame=5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->rules.size(), 4u);

  EXPECT_EQ(plan->rules[0].action, FaultAction::kDrop);
  EXPECT_EQ(plan->rules[0].direction, FaultDirection::kWorkerToCoordinator);
  EXPECT_EQ(plan->rules[0].worker, 1);
  EXPECT_EQ(plan->rules[0].frame_index, 12);

  EXPECT_EQ(plan->rules[1].action, FaultAction::kDelay);
  EXPECT_EQ(plan->rules[1].direction, FaultDirection::kBoth);
  EXPECT_EQ(plan->rules[1].worker, -1);  // every connection
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.25);
  EXPECT_EQ(plan->rules[1].delay_ms, 3);

  EXPECT_EQ(plan->rules[2].action, FaultAction::kCorrupt);
  EXPECT_EQ(plan->rules[2].direction, FaultDirection::kCoordinatorToWorker);
  EXPECT_EQ(plan->rules[2].frame_index, 0);

  EXPECT_EQ(plan->rules[3].action, FaultAction::kClose);
  EXPECT_EQ(plan->rules[3].worker, 0);

  // worker=all is the explicit spelling of the default.
  auto all = FaultPlan::Parse("drop:worker=all:frame=1");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->rules[0].worker, -1);

  // The empty plan is valid (no rules — a transparent proxy).
  EXPECT_TRUE(FaultPlan::Parse("").ok());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  // Unknown action / key.
  EXPECT_FALSE(FaultPlan::Parse("explode:frame=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:frames=1").ok());
  // A field that is not key=value.
  EXPECT_FALSE(FaultPlan::Parse("drop:frame").ok());
  // Probability outside [0, 1].
  EXPECT_FALSE(FaultPlan::Parse("drop:p=1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:p=-0.1").ok());
  // A rule with neither an exact frame nor a positive probability can
  // never fire — that is a spec bug, not a no-op.
  EXPECT_FALSE(FaultPlan::Parse("drop").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:dir=w2c").ok());
  // Unparseable numbers.
  EXPECT_FALSE(FaultPlan::Parse("seed=banana").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:frame=x").ok());
}

// --- Crash recovery (no proxy: the worker really dies) ---------------------

TEST(RecoverySpinnerTest, CrashedWorkerIsReplacedAndRunIsBitIdentical) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  const SpinnerConfig config = RecoveryConfig();
  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 4, &reference_labels);
  ASSERT_TRUE(reference.ok());

  for (const int fail_worker : {0, 1}) {
    auto store = ShardedGraphStore::Build(g, 4);
    ASSERT_TRUE(store.ok());
    MultiProcessOptions options;
    options.num_workers = 2;
    options.fail_after_score_steps = 2;  // dies in its 3rd ComputeScores
    options.fail_worker = fail_worker;
    ArmRecovery(&options, /*attempts=*/2);
    std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
    auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                            options, nullptr);
    ASSERT_TRUE(run.ok()) << "fail_worker=" << fail_worker << ": "
                          << run.status();
    ExpectBitIdentical(*run, *reference, store->labels(), reference_labels);
    // The crash was detected, the fleet rebuilt, and a replacement forked
    // (the crash hook is injected only by the initial Spawn, so the
    // rebuilt fleet runs clean).
    EXPECT_GE(run->wire.recoveries, 1);
    EXPECT_GE(run->wire.workers_replaced, 1);
  }
}

TEST(RecoverySpinnerTest, ExhaustedAttemptsSurfaceTheUnderlyingError) {
  const CsrGraph g = SmallWorldConverted(600, 5);
  const SpinnerConfig config = RecoveryConfig();
  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());

  // Every connection — including recovery replacements — dies on its
  // first ScoresReply, so no amount of rebuilding can make progress.
  dist::UnixSocketTransport unix_transport;
  auto plan = FaultPlan::Parse("close:dir=w2c:frame=3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  FaultInjectingTransport faulty(&unix_transport, std::move(*plan));

  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = &faulty;
  ArmRecovery(&options, /*attempts=*/1);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kIOError) << run.status();
  // Initial fleet + one rebuilt fleet, every connection killed once.
  EXPECT_GE(faulty.counters().connections_closed.load(), 2);
}

// --- Scripted frame faults through the chaos proxy -------------------------
//
// Frame ordinals are per connection and per direction; the Hello is
// consumed by the inner transport before the proxy interposes, so on the
// worker→coordinator side: Resume=0, Subscribe=1, InitReply=2, then per
// iteration ScoresReply, MigrateReply, DeltasAck (3, 4, 5 for the first).

TEST(RecoverySpinnerTest, DroppedReplySurfacesDeadlineExceededNotAHang) {
  const CsrGraph g = SmallWorldConverted(600, 5);
  const SpinnerConfig config = RecoveryConfig();
  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());

  dist::UnixSocketTransport unix_transport;
  // Swallow worker 0's second-iteration ScoresReply. The worker stays
  // alive and connected — only a read deadline can notice.
  auto plan = FaultPlan::Parse("drop:dir=w2c:worker=0:frame=6");
  ASSERT_TRUE(plan.ok()) << plan.status();
  FaultInjectingTransport faulty(&unix_transport, std::move(*plan));

  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = &faulty;
  options.rpc_timeout_ms = 1'000;
  options.heartbeat_period_ms = 25;
  // Recovery stays off: the deadline itself is under test.
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status();
  EXPECT_NE(run.status().message().find("hung"), std::string::npos)
      << run.status();
  EXPECT_EQ(faulty.counters().frames_dropped.load(), 1);
}

TEST(RecoverySpinnerTest, DroppedReplyRecoversBitIdentical) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  const SpinnerConfig config = RecoveryConfig();
  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 4, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  dist::UnixSocketTransport unix_transport;
  auto plan = FaultPlan::Parse("drop:dir=w2c:worker=0:frame=6");
  ASSERT_TRUE(plan.ok()) << plan.status();
  FaultInjectingTransport faulty(&unix_transport, std::move(*plan));

  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = &faulty;
  ArmRecovery(&options, /*attempts=*/2);
  options.rpc_timeout_ms = 1'000;  // the drop costs one deadline wait
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  ExpectBitIdentical(*run, *reference, store->labels(), reference_labels);
  EXPECT_GE(run->wire.recoveries, 1);
  EXPECT_EQ(faulty.counters().frames_dropped.load(), 1);
}

TEST(RecoverySpinnerTest, CorruptChecksumAckRecoversBitIdentical) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  const SpinnerConfig config = RecoveryConfig();
  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 4, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  dist::UnixSocketTransport unix_transport;
  // Flip a byte in worker 0's first DeltasAck — the 8-byte state checksum
  // the coordinator verifies every iteration. The mismatch must be
  // detected (a corrupt plain frame would otherwise pass silently; the
  // ack checksum is exactly the cross-process state gate).
  auto plan = FaultPlan::Parse("corrupt:dir=w2c:worker=0:frame=5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  FaultInjectingTransport faulty(&unix_transport, std::move(*plan));

  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = &faulty;
  ArmRecovery(&options, /*attempts=*/2);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  ExpectBitIdentical(*run, *reference, store->labels(), reference_labels);
  EXPECT_GE(run->wire.recoveries, 1);
  EXPECT_EQ(faulty.counters().frames_corrupted.load(), 1);
}

TEST(RecoverySpinnerTest, ClosedConnectionRecoversBitIdentical) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  const SpinnerConfig config = RecoveryConfig();
  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 4, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  dist::UnixSocketTransport unix_transport;
  // Sever worker 0's connection as it sends its first ScoresReply — to
  // the coordinator this is indistinguishable from a crashed process.
  auto plan = FaultPlan::Parse("close:dir=w2c:worker=0:frame=3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  FaultInjectingTransport faulty(&unix_transport, std::move(*plan));

  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = &faulty;
  ArmRecovery(&options, /*attempts=*/2);
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  ExpectBitIdentical(*run, *reference, store->labels(), reference_labels);
  EXPECT_GE(run->wire.recoveries, 1);
  EXPECT_GE(run->wire.workers_replaced, 1);
  EXPECT_EQ(faulty.counters().connections_closed.load(), 1);
}

TEST(RecoverySpinnerTest, PureDelayFaultsNeverChangeTheResult) {
  const CsrGraph g = SmallWorldConverted(800, 17);
  const SpinnerConfig config = RecoveryConfig();
  std::vector<PartitionId> reference_labels;
  auto reference = ReferenceRun(config, g, 4, &reference_labels);
  ASSERT_TRUE(reference.ok());

  auto store = ShardedGraphStore::Build(g, 4);
  ASSERT_TRUE(store.ok());
  dist::UnixSocketTransport unix_transport;
  // Delays preserve bytes, so even with recovery OFF a delay-riddled run
  // must be failure-free and bit-identical — the chaos smoke invariant.
  auto plan = FaultPlan::Parse("seed=9;delay:p=0.2:ms=2");
  ASSERT_TRUE(plan.ok()) << plan.status();
  FaultInjectingTransport faulty(&unix_transport, std::move(*plan));

  MultiProcessOptions options;
  options.num_workers = 2;
  options.worker_transport = &faulty;
  std::vector<PartitionId> no_labels(g.NumVertices(), kNoPartition);
  auto run = dist::RunMultiProcessSpinner(config, &*store, no_labels,
                                          options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status();
  ExpectBitIdentical(*run, *reference, store->labels(), reference_labels);
  EXPECT_EQ(run->wire.recoveries, 0);
  EXPECT_GT(faulty.counters().frames_delayed.load(), 0);
}

}  // namespace
}  // namespace spinner
