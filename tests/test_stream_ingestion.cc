// IngestionService: lifecycle, trigger policies (with an injected
// ManualClock), drain-and-stop vs. hard cancellation mid-refine,
// backpressure at the service boundary, error surfacing, checkpoint
// wiring — and the determinism invariant: a drained ingestion run is
// bit-identical (assignments and float φ/ρ/score histories) to the
// equivalent blocking ApplyDelta sequence at every {num_shards,
// num_threads} shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/session.h"
#include "stream/clock.h"
#include "stream/ingestion_service.h"
#include "stream/trigger_policy.h"

namespace spinner::stream {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

SpinnerConfig SmallConfig(int k = 4) {
  SpinnerConfig config;
  config.num_partitions = k;
  config.num_workers = 2;
  return config;
}

GeneratedGraph SmallWorld(uint64_t seed = 9) {
  auto ws = WattsStrogatz(400, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  return std::move(ws).value();
}

/// RAII temp file path for checkpoint tests.
struct TempPath {
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempPath() {
    std::remove(path.c_str());
    std::remove((path + ".dlog").c_str());
  }
  const std::string path;
};

void ExpectValidAssignment(const PartitioningSession& session) {
  ASSERT_EQ(static_cast<int64_t>(session.assignment().size()),
            session.num_vertices());
  for (PartitionId l : session.assignment()) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, session.num_partitions());
  }
}

/// A deterministic event stream over the SmallWorld graph: fresh edges
/// (some submitted twice, as a producer retry would), a transient edge
/// that is removed within the stream, and a vertex grow with edges onto
/// the new ids.
std::vector<EdgeEvent> ScriptedEvents(const GeneratedGraph& g) {
  std::vector<EdgeEvent> events;
  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 40, /*seed=*/7);
  for (size_t i = 0; i < fresh.added_edges.size(); ++i) {
    const Edge& e = fresh.added_edges[i];
    events.push_back(EdgeEvent::AddEdge(e.src, e.dst));
    if (i % 5 == 0) {  // duplicate submission: Coalesce eats it
      events.push_back(EdgeEvent::AddEdge(e.src, e.dst));
    }
    if (i % 7 == 0) {  // transient edge: added then removed in-stream
      events.push_back(EdgeEvent::AddEdge(e.dst, e.src));
      events.push_back(EdgeEvent::RemoveEdge(e.dst, e.src));
    }
  }
  events.push_back(EdgeEvent::AddVertices(5));
  for (int i = 0; i < 5; ++i) {
    events.push_back(EdgeEvent::AddEdge(i, g.num_vertices + i));
  }
  return events;
}

/// Collects (φ, ρ, score) per LPA iteration — the float histories the
/// determinism contract compares bitwise.
struct HistoryTrace {
  std::vector<double> values;
  ProgressObserver AsObserver() {
    ProgressObserver observer;
    observer.on_iteration = [this](const IterationPoint& point) {
      values.push_back(point.phi);
      values.push_back(point.rho);
      values.push_back(point.score);
      return true;
    };
    return observer;
  }
};

// --- Lifecycle ------------------------------------------------------------

TEST(IngestionServiceTest, StartRequiresAnOpenSession) {
  PartitioningSession session(SmallConfig());
  IngestionService service(&session, IngestionOptions{});
  Status status = service.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(IngestionServiceTest, SubmitAndStopBeforeStartFail) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  IngestionService service(&session, IngestionOptions{});
  EXPECT_EQ(service.Submit(EdgeEvent::AddEdge(0, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Drain().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stop().code(), StatusCode::kFailedPrecondition);
}

TEST(IngestionServiceTest, DoubleStartIsRejectedAndStopIsIdempotent) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  IngestionService service(&session, IngestionOptions{});
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service.Stop().ok());
  EXPECT_TRUE(service.Stop().ok());  // idempotent
  EXPECT_FALSE(service.running());
  // A stopped service refuses new events.
  EXPECT_EQ(service.Submit(EdgeEvent::AddEdge(0, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IngestionServiceTest, StopAppliesTheFinalPartialWindow) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(1000);  // never fires
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());
  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 7, /*seed=*/3);
  for (const Edge& e : fresh.added_edges) {
    ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
  }
  ASSERT_TRUE(service.Stop().ok());

  const IngestStats stats = service.stats();
  EXPECT_EQ(stats.events_submitted, 7);
  EXPECT_EQ(stats.events_ingested, 7);
  EXPECT_EQ(stats.windows_applied, 1);  // drain-and-stop forced the tail
  EXPECT_EQ(stats.queue_depth, 0);
  ExpectValidAssignment(session);
}

TEST(IngestionServiceTest, EventCountPolicyClosesWindowsAtTheWatermark) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(4);
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());
  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 10, /*seed=*/3);
  for (const Edge& e : fresh.added_edges) {
    ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
  }
  ASSERT_TRUE(service.Stop().ok());

  const IngestStats stats = service.stats();
  // 10 events at watermark 4: two full windows plus the 2-event tail.
  EXPECT_EQ(stats.windows_applied, 3);
  EXPECT_EQ(stats.events_ingested, 10);
  EXPECT_GT(stats.last_phi, 0.0);
  EXPECT_GT(stats.last_rho, 0.0);
}

TEST(IngestionServiceTest, DrainQuiescesTheSessionForInspection) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> initial = session.assignment();

  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(1000);  // never fires
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());

  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 20, /*seed=*/5);
  for (int i = 0; i < 10; ++i) {
    const Edge& e = fresh.added_edges[static_cast<size_t>(i)];
    ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
  }
  ASSERT_TRUE(service.Drain().ok());
  // Drained: every submitted event is applied, the session is safe to
  // inspect, and the service keeps running.
  EXPECT_TRUE(service.running());
  EXPECT_EQ(service.stats().events_ingested, 10);
  EXPECT_EQ(service.stats().windows_applied, 1);
  ExpectValidAssignment(session);

  // The stream continues after the drain.
  for (int i = 10; i < 20; ++i) {
    const Edge& e = fresh.added_edges[static_cast<size_t>(i)];
    ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
  }
  ASSERT_TRUE(service.Drain().ok());
  EXPECT_EQ(service.stats().events_ingested, 20);
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_NE(session.assignment(), initial);  // the stream moved vertices
}

// --- Trigger policies against the injected clock --------------------------

TEST(IngestionServiceTest, StalenessSloPolicyFiresWhenTheClockAdvances) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  auto clock = std::make_shared<ManualClock>();
  IngestionOptions options;
  options.clock = clock;
  options.idle_poll = microseconds(200);
  options.policy = std::make_unique<StalenessSloPolicy>(/*micros=*/1000);
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());

  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 3, /*seed=*/11);
  for (const Edge& e : fresh.added_edges) {
    ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
  }
  // The clock is frozen: the events sit in the open window, under the SLO.
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(service.stats().windows_applied, 0);

  // Breach the SLO; the idle-polling loop must now apply the window.
  clock->AdvanceMicros(2000);
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(2000);
  while (service.stats().windows_applied == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  const IngestStats stats = service.stats();
  EXPECT_EQ(stats.windows_applied, 1);
  EXPECT_EQ(stats.events_ingested, 3);
  EXPECT_GE(stats.last_staleness_micros, 2000);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(IngestionServiceTest, WallClockWindowPolicyFiresOncePerWindow) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  auto clock = std::make_shared<ManualClock>();
  clock->SetMicros(1'000'000);
  IngestionOptions options;
  options.clock = clock;
  options.idle_poll = microseconds(200);
  options.policy = std::make_unique<WallClockWindowPolicy>(/*micros=*/5000);
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());

  ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(0, 7)).ok());
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_EQ(service.stats().windows_applied, 0);  // window still young

  clock->AdvanceMicros(6000);  // older than the window length
  const auto deadline = std::chrono::steady_clock::now() + milliseconds(2000);
  while (service.stats().windows_applied == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(service.stats().windows_applied, 1);
  ASSERT_TRUE(service.Stop().ok());
}

// --- Backpressure at the service boundary ---------------------------------

TEST(IngestionServiceTest, ProducersSeeBackpressureWhileARefineIsInFlight) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  // Gate the first windowed apply inside the partitioner so the queue
  // backs up behind it.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool in_refine = false;
  bool release = false;
  ProgressObserver observer;
  observer.on_iteration = [&](const IterationPoint&) {
    std::unique_lock<std::mutex> lock(gate_mutex);
    if (!in_refine) {
      in_refine = true;
      gate_cv.notify_all();
    }
    gate_cv.wait(lock, [&] { return release; });
    return true;
  };

  IngestionOptions options;
  options.queue_capacity = 2;
  options.policy = std::make_unique<EventCountPolicy>(1);
  IngestionService service(&session, std::move(options));
  service.SetProgressObserver(observer);
  ASSERT_TRUE(service.Start().ok());

  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 8, /*seed=*/13);
  // First event starts an apply that parks inside the observer.
  ASSERT_TRUE(service
                  .Submit(EdgeEvent::AddEdge(fresh.added_edges[0].src,
                                             fresh.added_edges[0].dst))
                  .ok());
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return in_refine; });
  }

  // The consumer is parked: the queue (capacity 2) fills and stays full.
  ASSERT_TRUE(service
                  .TrySubmit(EdgeEvent::AddEdge(fresh.added_edges[1].src,
                                                fresh.added_edges[1].dst))
                  .ok());
  ASSERT_TRUE(service
                  .TrySubmit(EdgeEvent::AddEdge(fresh.added_edges[2].src,
                                                fresh.added_edges[2].dst))
                  .ok());
  Status full = service.TrySubmit(EdgeEvent::AddEdge(
      fresh.added_edges[3].src, fresh.added_edges[3].dst));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kOutOfRange);

  Status timed_out = service.SubmitFor(
      EdgeEvent::AddEdge(fresh.added_edges[3].src, fresh.added_edges[3].dst),
      std::chrono::microseconds(milliseconds(20)));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), StatusCode::kOutOfRange);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(service.stats().events_ingested, 3);
  EXPECT_EQ(service.stats().queue_high_water, 2);
  ExpectValidAssignment(session);
}

// --- Cancellation ---------------------------------------------------------

TEST(IngestionServiceTest, CancelInterruptsMidRefineAndDiscardsTheQueue) {
  const GeneratedGraph g = SmallWorld();
  SpinnerConfig config = SmallConfig(8);
  config.halt_epsilon = 0.0;  // keep iterating: give Cancel a window
  PartitioningSession session(config);
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const auto vertices_before = session.num_vertices();

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool in_refine = false;
  ProgressObserver observer;
  observer.on_iteration = [&](const IterationPoint&) {
    std::lock_guard<std::mutex> lock(gate_mutex);
    if (!in_refine) {
      in_refine = true;
      gate_cv.notify_all();
    }
    return true;
  };

  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(1);
  IngestionService service(&session, std::move(options));
  service.SetProgressObserver(observer);
  ASSERT_TRUE(service.Start().ok());

  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 60, /*seed=*/17);
  for (const Edge& e : fresh.added_edges) {
    ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
  }
  {
    // Wait until label propagation is demonstrably in flight, then yank.
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return in_refine; });
  }
  ASSERT_TRUE(service.Cancel().ok());
  EXPECT_FALSE(service.running());

  const IngestStats stats = service.stats();
  EXPECT_TRUE(stats.cancelled);
  // The cancel landed before the stream was consumed: unapplied events
  // were discarded, not silently applied.
  EXPECT_LT(stats.events_ingested, stats.events_submitted);
  // The session survives a mid-refine cancel with a valid (partially
  // refined) assignment — nothing is torn down or corrupted.
  EXPECT_EQ(session.num_vertices(), vertices_before);
  ExpectValidAssignment(session);
  // And the session remains usable for blocking calls afterwards.
  ASSERT_TRUE(session.Refine().ok());
}

// --- Error surfacing ------------------------------------------------------

TEST(IngestionServiceTest, BadEventSurfacesACleanErrorFromStop) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());
  const std::vector<PartitionId> before = session.assignment();

  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(1);
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());
  // An edge onto a vertex that was never grown: ApplyDelta must reject it
  // and the service must carry that Status out.
  ASSERT_TRUE(
      service.Submit(EdgeEvent::AddEdge(0, g.num_vertices + 5)).ok());
  Status status = service.Stop();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The failed window never touched the session.
  EXPECT_EQ(session.assignment(), before);

  // Drain on a service that died reports the same error.
  EXPECT_FALSE(service.running());
}

// --- on_apply callback ----------------------------------------------------

TEST(IngestionServiceTest, OnApplyCallbackObservesEveryWindowAndCanStop) {
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  std::atomic<int> applies{0};
  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(2);
  options.on_apply = [&](const IngestStats& stats) {
    ++applies;
    EXPECT_GT(stats.windows_applied, 0);
    return stats.windows_applied < 2;  // request a stop after two windows
  };
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());

  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 12, /*seed=*/19);
  for (const Edge& e : fresh.added_edges) {
    // The callback closes the queue mid-stream; later submits may fail.
    (void)service.Submit(EdgeEvent::AddEdge(e.src, e.dst));
  }
  (void)service.Stop();
  EXPECT_GE(applies.load(), 2);
  ExpectValidAssignment(session);
}

// --- Checkpoint wiring ----------------------------------------------------

TEST(IngestionServiceTest, CheckpointsEveryWindowAndRestoresIdentically) {
  const GeneratedGraph g = SmallWorld();
  TempPath base("ingest_ckpt.spns");
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(8);
  options.checkpoint_base_path = base.path;
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());
  for (const EdgeEvent& event : ScriptedEvents(g)) {
    ASSERT_TRUE(service.Submit(event).ok());
  }
  ASSERT_TRUE(service.Stop().ok());
  const IngestStats stats = service.stats();
  EXPECT_GT(stats.windows_applied, 1);
  EXPECT_GT(stats.events_coalesced, 0);
  EXPECT_GE(stats.checkpoint_bases, 1);

  // A fresh session restored from base+log matches the live one exactly.
  PartitioningSession restored(SmallConfig());
  ASSERT_TRUE(
      IncrementalCheckpointer::RestoreSession(base.path, &restored).ok());
  EXPECT_EQ(restored.num_vertices(), session.num_vertices());
  EXPECT_EQ(restored.num_partitions(), session.num_partitions());
  EXPECT_EQ(restored.assignment(), session.assignment());
  EXPECT_EQ(restored.edges(), session.edges());
}

// --- The determinism invariant --------------------------------------------

/// Replays `events` through the blocking API exactly as the service
/// windows them under EventCountPolicy(watermark): fold events in order,
/// close the window at the watermark, Coalesce, ApplyDelta; the final
/// partial window applies at stream end (what Stop() does).
Status BlockingReplay(PartitioningSession* session,
                      const std::vector<EdgeEvent>& events, int watermark) {
  GraphDelta window;
  int64_t window_events = 0;
  auto flush = [&]() -> Status {
    if (window_events == 0) return Status::OK();
    GraphDelta delta = std::move(window);
    window = GraphDelta{};
    window_events = 0;
    return session->ApplyDelta(delta.Coalesce());
  };
  for (const EdgeEvent& event : events) {
    switch (event.kind) {
      case EdgeEvent::Kind::kAddEdge:
        window.AddEdge(event.src, event.dst);
        break;
      case EdgeEvent::Kind::kRemoveEdge:
        window.RemoveEdge(event.src, event.dst);
        break;
      case EdgeEvent::Kind::kAddVertices:
        window.AddVertex(event.count);
        break;
    }
    if (++window_events >= watermark) SPINNER_RETURN_IF_ERROR(flush());
  }
  return flush();
}

TEST(IngestionDeterminismTest, DrainedRunMatchesBlockingApplyDeltaExactly) {
  const GeneratedGraph g = SmallWorld();
  const std::vector<EdgeEvent> events = ScriptedEvents(g);
  constexpr int kWatermark = 16;

  // Reference: the blocking replay at the canonical {1 shard, 1 thread}.
  HistoryTrace reference_trace;
  PartitioningSession reference(
      SmallConfig(), SessionOptions{.num_shards = 1, .num_threads = 1});
  ASSERT_TRUE(reference.Open(g.num_vertices, g.edges, g.directed).ok());
  // Observer installed after Open: both paths trace only the streamed
  // applies (the service wraps its observer in at Start, past Open too).
  reference.SetProgressObserver(reference_trace.AsObserver());
  ASSERT_TRUE(BlockingReplay(&reference, events, kWatermark).ok());
  ASSERT_FALSE(reference_trace.values.empty());

  for (const auto& [shards, threads] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 4}, {2, 1}, {2, 4},
                                        {7, 1}, {7, 4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(threads));
    HistoryTrace trace;
    PartitioningSession session(
        SmallConfig(),
        SessionOptions{.num_shards = shards, .num_threads = threads});
    ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

    IngestionOptions options;
    options.policy = std::make_unique<EventCountPolicy>(kWatermark);
    options.queue_capacity = 16;  // smaller than the stream: real draining
    IngestionService service(&session, std::move(options));
    service.SetProgressObserver(trace.AsObserver());
    ASSERT_TRUE(service.Start().ok());
    for (const EdgeEvent& event : events) {
      ASSERT_TRUE(service.Submit(event).ok());
    }
    ASSERT_TRUE(service.Stop().ok());

    // Bit-identical assignment AND bit-identical float φ/ρ/score history:
    // the queue, the thread and the clock leak nothing into partitioning.
    EXPECT_EQ(session.assignment(), reference.assignment());
    EXPECT_EQ(session.edges(), reference.edges());
    ASSERT_EQ(trace.values.size(), reference_trace.values.size());
    for (size_t i = 0; i < trace.values.size(); ++i) {
      ASSERT_EQ(trace.values[i], reference_trace.values[i]) << "at " << i;
    }
  }
}

TEST(IngestionDeterminismTest, MultiProducerDrainMatchesWhenWindowsAlign) {
  // Multi-producer runs interleave arbitrarily, so the *global* event
  // order is not reproducible — but with a watermark of 1 every event is
  // its own window, and the final edge multiset is order-independent. The
  // maintained graph must land in the same state as the blocking replay
  // of any serialization, and the run must be clean under TSan.
  const GeneratedGraph g = SmallWorld();
  PartitioningSession session(SmallConfig());
  ASSERT_TRUE(session.Open(g.num_vertices, g.edges, g.directed).ok());

  const GraphDelta fresh =
      RandomEdgeAdditions(g.num_vertices, g.edges, 24, /*seed=*/23);
  IngestionOptions options;
  options.policy = std::make_unique<EventCountPolicy>(1);
  options.queue_capacity = 4;  // contention: producers block on each other
  IngestionService service(&session, std::move(options));
  ASSERT_TRUE(service.Start().ok());

  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < fresh.added_edges.size();
           i += kProducers) {
        const Edge& e = fresh.added_edges[i];
        ASSERT_TRUE(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(service.Stop().ok());

  EXPECT_EQ(service.stats().events_ingested,
            static_cast<int64_t>(fresh.added_edges.size()));
  EXPECT_EQ(service.stats().windows_applied,
            static_cast<int64_t>(fresh.added_edges.size()));
  // Same final edge multiset as the blocking path (sorted compare: the
  // arrival order of single-event windows is the only nondeterminism).
  EdgeList got = session.edges();
  std::sort(got.begin(), got.end());
  PartitioningSession blocking(SmallConfig());
  ASSERT_TRUE(blocking.Open(g.num_vertices, g.edges, g.directed).ok());
  for (const Edge& e : fresh.added_edges) {
    ASSERT_TRUE(blocking.ApplyDelta(GraphDelta{}.AddEdge(e.src, e.dst)).ok());
  }
  EdgeList want = blocking.edges();
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  ExpectValidAssignment(session);
}

}  // namespace
}  // namespace spinner::stream
