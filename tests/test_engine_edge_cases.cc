// Engine edge cases beyond the core-semantics suite: self-messages,
// message conservation across stats, empty graphs, more workers than
// vertices, and aggregator persistence through a long run.
#include <gtest/gtest.h>

#include "graph/conversion.h"
#include "graph/generators.h"
#include "pregel/engine.h"
#include "pregel/topology.h"

namespace spinner::pregel {
namespace {

struct CounterVertex {
  int64_t received = 0;
};

TEST(EngineEdgeCaseTest, SelfMessagesDeliverNextSuperstep) {
  auto g = BuildSymmetric(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  class SelfPing : public VertexProgram<CounterVertex, char, int64_t> {
   public:
    void Compute(VertexHandle<CounterVertex, char, int64_t>& v,
                 std::span<const int64_t> messages) override {
      if (v.superstep() == 0) {
        v.SendMessage(v.id(), 7);  // message to self
        return;
      }
      for (int64_t m : messages) {
        EXPECT_EQ(m, 7);
        ++v.value().received;
      }
      v.VoteToHalt();
    }
  } program;
  EngineConfig config;
  config.num_workers = 2;
  PregelEngine<CounterVertex, char, int64_t> engine(
      *g, config, HashPlacement(2),
      [](VertexId) { return CounterVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  engine.Run(program);
  engine.ForEachVertex([](VertexId, const CounterVertex& v) {
    EXPECT_EQ(v.received, 1);
  });
}

TEST(EngineEdgeCaseTest, MessageAccountingIsConserved) {
  auto ws = WattsStrogatz(200, 4, 0.3, 11);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  class Broadcast : public VertexProgram<CounterVertex, char, int64_t> {
   public:
    void Compute(VertexHandle<CounterVertex, char, int64_t>& v,
                 std::span<const int64_t>) override {
      if (v.superstep() < 2) {
        v.SendMessageToAllEdges(1);
      } else {
        v.VoteToHalt();
      }
    }
  } program;
  EngineConfig config;
  config.num_workers = 5;
  PregelEngine<CounterVertex, char, int64_t> engine(
      *g, config, HashPlacement(5),
      [](VertexId) { return CounterVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  RunStats stats = engine.Run(program);

  for (const auto& step : stats.per_superstep) {
    // sent = local + remote; received per worker sums to sent.
    EXPECT_EQ(step.messages_sent,
              step.messages_local + step.messages_remote);
    int64_t received = 0;
    int64_t remote_received = 0;
    for (size_t w = 0; w < step.worker_messages_in.size(); ++w) {
      received += step.worker_messages_in[w];
      remote_received += step.worker_remote_messages_in[w];
    }
    EXPECT_EQ(received, step.messages_sent);
    EXPECT_EQ(remote_received, step.messages_remote);
    // per-worker outs sum to sent.
    int64_t sent = 0;
    for (int64_t out : step.worker_messages_out) sent += out;
    EXPECT_EQ(sent, step.messages_sent);
  }
}

TEST(EngineEdgeCaseTest, EmptyGraphTerminatesImmediately) {
  auto g = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  class Nop : public VertexProgram<CounterVertex, char, int64_t> {
   public:
    void Compute(VertexHandle<CounterVertex, char, int64_t>& v,
                 std::span<const int64_t>) override {
      v.VoteToHalt();
    }
  } program;
  EngineConfig config;
  config.num_workers = 4;
  PregelEngine<CounterVertex, char, int64_t> engine(
      *g, config, HashPlacement(4),
      [](VertexId) { return CounterVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  RunStats stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 1);
  EXPECT_EQ(stats.per_superstep[0].active_vertices, 0);
}

TEST(EngineEdgeCaseTest, MoreWorkersThanVertices) {
  auto g = BuildSymmetric(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  class Echo : public VertexProgram<CounterVertex, char, int64_t> {
   public:
    void Compute(VertexHandle<CounterVertex, char, int64_t>& v,
                 std::span<const int64_t> messages) override {
      if (v.superstep() == 0) {
        v.SendMessageToAllEdges(1);
        return;
      }
      v.value().received += static_cast<int64_t>(messages.size());
      v.VoteToHalt();
    }
  } program;
  EngineConfig config;
  config.num_workers = 16;  // > |V|
  PregelEngine<CounterVertex, char, int64_t> engine(
      *g, config, HashPlacement(16),
      [](VertexId) { return CounterVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  engine.Run(program);
  EXPECT_EQ(engine.Value(1).received, 2);
  EXPECT_EQ(engine.Value(0).received, 1);
}

TEST(EngineEdgeCaseTest, PersistentAggregatorSurvivesManySupersteps) {
  auto ring = Ring(8);
  auto g = BuildSymmetric(ring.num_vertices, ring.edges);
  ASSERT_TRUE(g.ok());
  class Accumulate : public VertexProgram<CounterVertex, char, int64_t> {
   public:
    void RegisterAggregators(AggregatorRegistry* registry) override {
      registry->Register("persist", std::make_unique<LongSumAggregator>(),
                         /*persistent=*/true);
      registry->Register("volatile", std::make_unique<LongSumAggregator>(),
                         /*persistent=*/false);
    }
    void Compute(VertexHandle<CounterVertex, char, int64_t>& v,
                 std::span<const int64_t>) override {
      v.AggregatePartial<LongSumAggregator>("persist")->Add(1);
      v.AggregatePartial<LongSumAggregator>("volatile")->Add(1);
    }
    bool MasterCompute(MasterContext& ctx) override {
      if (ctx.superstep() == 9) {
        // Persistent: 8 vertices × 10 supersteps; volatile: last superstep
        // only.
        EXPECT_EQ(ctx.aggregators().Get<LongSumAggregator>("persist")->value(),
                  80);
        EXPECT_EQ(
            ctx.aggregators().Get<LongSumAggregator>("volatile")->value(),
            8);
        return false;
      }
      return true;
    }
  } program;
  EngineConfig config;
  config.num_workers = 3;
  PregelEngine<CounterVertex, char, int64_t> engine(
      *g, config, HashPlacement(3),
      [](VertexId) { return CounterVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  RunStats stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 10);
}

TEST(EngineEdgeCaseTest, EdgeValuesMutableAndIndependent) {
  auto g = BuildSymmetric(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  class TagEdges : public VertexProgram<CounterVertex, int64_t, int64_t> {
   public:
    void Compute(VertexHandle<CounterVertex, int64_t, int64_t>& v,
                 std::span<const int64_t>) override {
      for (auto& e : v.mutable_edges()) {
        e.value = v.id() * 100 + e.target;
      }
      v.VoteToHalt();
    }
  } program;
  EngineConfig config;
  config.num_workers = 2;
  PregelEngine<CounterVertex, int64_t, int64_t> engine(
      *g, config, HashPlacement(2),
      [](VertexId) { return CounterVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return int64_t{-1}; });
  engine.Run(program);
  // Each direction of the symmetric edge carries its own value.
  for (const auto& e : engine.EdgesOf(1)) {
    EXPECT_EQ(e.value, 100 + e.target);
  }
  for (const auto& e : engine.EdgesOf(2)) {
    EXPECT_EQ(e.value, 200 + e.target);
  }
}

}  // namespace
}  // namespace spinner::pregel
