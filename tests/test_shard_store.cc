// PersistentShardStore (base + append-only delta log, crash-tolerant
// tails, compaction) and the worker's compact index layout — the label
// and scratch arrays cover owned + subscribed vertices, not all of V, and
// every CSR target remaps to a slot in that compact array.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "dist/shard_store.h"
#include "dist/worker.h"
#include "graph/binary_io.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "graph/sharded_store.h"

namespace spinner {
namespace {

using dist::BuildWorkerLayout;
using dist::PersistentShardStore;
using dist::RemapTargetsToSlots;
using dist::ShardSliceFingerprint;
using dist::WorkerLayout;

CsrGraph SmallWorldConverted(int64_t n, uint64_t seed = 11) {
  auto ws = WattsStrogatz(n, 3, 0.3, seed);
  SPINNER_CHECK(ws.ok());
  auto converted = BuildSymmetric(ws->num_vertices, ws->edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

std::vector<uint8_t> SliceBytes(const ShardedGraphStore::Shard& shard) {
  std::vector<uint8_t> bytes;
  graph_io::AppendShardSlice(shard, &bytes);
  return bytes;
}

std::string FreshDir(const std::string& name) {
  // TempDir is stable across test runs; wipe leftovers so every test
  // really starts from an absent store.
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Appends `n` raw bytes to a file (corrupt-tail injection).
void AppendGarbage(const std::string& path, int n) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  SPINNER_CHECK(f != nullptr);
  for (int i = 0; i < n; ++i) std::fputc(0x5a, f);
  std::fclose(f);
}

// --- PersistentShardStore --------------------------------------------------

TEST(PersistentShardStoreTest, BaseRoundTripsWithMatchingFingerprint) {
  const CsrGraph g = SmallWorldConverted(700);
  auto store = ShardedGraphStore::Build(g, 3);
  ASSERT_TRUE(store.ok());
  PersistentShardStore disk(FreshDir("spsb_roundtrip"));

  for (int s = 0; s < 3; ++s) {
    const auto bytes = SliceBytes(store->shard(s));
    ASSERT_TRUE(disk.Put(s, bytes).ok());
    auto loaded = disk.Load(s);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_TRUE(loaded->has_value());
    EXPECT_EQ((*loaded)->fingerprint, ShardSliceFingerprint(bytes));
    EXPECT_EQ((*loaded)->fingerprint,
              ShardSliceFingerprint(store->shard(s)));
    EXPECT_EQ((*loaded)->shard.begin, store->shard(s).begin);
    EXPECT_EQ((*loaded)->shard.targets, store->shard(s).targets);
    EXPECT_EQ((*loaded)->shard.weights, store->shard(s).weights);
  }
  EXPECT_EQ(disk.bases_written(), 3);
  EXPECT_EQ(disk.records_appended(), 0);
}

TEST(PersistentShardStoreTest, AbsentShardLoadsAsNullopt) {
  PersistentShardStore disk(FreshDir("spsb_absent"));
  auto loaded = disk.Load(7);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->has_value());
}

TEST(PersistentShardStoreTest, MatchingPutIsANoOpAndUpdatesAppend) {
  const CsrGraph g1 = SmallWorldConverted(600, 3);
  const CsrGraph g2 = SmallWorldConverted(600, 4);
  auto s1 = ShardedGraphStore::Build(g1, 1);
  auto s2 = ShardedGraphStore::Build(g2, 1);
  ASSERT_TRUE(s1.ok() && s2.ok());
  PersistentShardStore disk(FreshDir("spsb_noop"));

  ASSERT_TRUE(disk.Put(0, SliceBytes(s1->shard(0))).ok());
  ASSERT_TRUE(disk.Put(0, SliceBytes(s1->shard(0))).ok());  // no-op
  EXPECT_EQ(disk.bases_written(), 1);
  EXPECT_EQ(disk.records_appended(), 0);

  // New content for the same shard: one delta record, latest wins.
  ASSERT_TRUE(disk.Put(0, SliceBytes(s2->shard(0))).ok());
  EXPECT_EQ(disk.records_appended(), 1);
  auto loaded = disk.Load(0);
  ASSERT_TRUE(loaded.ok() && loaded->has_value());
  EXPECT_EQ((*loaded)->fingerprint,
            ShardSliceFingerprint(s2->shard(0)));
  EXPECT_EQ((*loaded)->shard.targets, s2->shard(0).targets);
}

TEST(PersistentShardStoreTest, CompactionFoldsTheLogIntoAFreshBase) {
  PersistentShardStore::Options options;
  options.compact_after_records = 2;
  PersistentShardStore disk(FreshDir("spsb_compact"), options);

  std::vector<uint64_t> last_fingerprint;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const CsrGraph g = SmallWorldConverted(600, seed);
    auto store = ShardedGraphStore::Build(g, 1);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(disk.Put(0, SliceBytes(store->shard(0))).ok());
    auto loaded = disk.Load(0);
    ASSERT_TRUE(loaded.ok() && loaded->has_value());
    EXPECT_EQ((*loaded)->fingerprint,
              ShardSliceFingerprint(store->shard(0)));
  }
  EXPECT_GT(disk.compactions(), 0);
  // Replay stays bounded: the live log never exceeds the threshold.
  EXPECT_LT(disk.records_appended(),
            5 * options.compact_after_records);
}

TEST(PersistentShardStoreTest, CorruptLogTailRollsBackToLastValidRecord) {
  const CsrGraph g1 = SmallWorldConverted(600, 3);
  const CsrGraph g2 = SmallWorldConverted(600, 4);
  auto s1 = ShardedGraphStore::Build(g1, 1);
  auto s2 = ShardedGraphStore::Build(g2, 1);
  ASSERT_TRUE(s1.ok() && s2.ok());
  PersistentShardStore disk(FreshDir("spsb_tail"));
  ASSERT_TRUE(disk.Put(0, SliceBytes(s1->shard(0))).ok());
  ASSERT_TRUE(disk.Put(0, SliceBytes(s2->shard(0))).ok());  // record 1

  // A crash mid-append leaves a truncated record at the tail. It must be
  // ignored — the slice rolls back to the last valid record.
  AppendGarbage(disk.LogPath(0), 21);
  auto loaded = disk.Load(0);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ((*loaded)->fingerprint,
            ShardSliceFingerprint(s2->shard(0)));
  EXPECT_GT(disk.corrupt_tails_ignored(), 0);
}

TEST(PersistentShardStoreTest, CorruptBaseMeansRedownloadNotCrash) {
  const CsrGraph g = SmallWorldConverted(500, 7);
  auto store = ShardedGraphStore::Build(g, 1);
  ASSERT_TRUE(store.ok());
  PersistentShardStore disk(FreshDir("spsb_badbase"));
  ASSERT_TRUE(disk.Put(0, SliceBytes(store->shard(0))).ok());

  // Flip one byte in the middle of the base file.
  const std::string path = disk.BasePath(0);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
  std::fputc(0xff, f);
  std::fclose(f);

  auto loaded = disk.Load(0);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->has_value());  // "re-download", never fatal
}

TEST(PersistentShardStoreTest, CorruptRecordRollsBackAndRedownloadHeals) {
  // The failover-resume sequence: a replacement worker adopts a store
  // whose delta log was damaged mid-record (not just a truncated tail).
  // The log replay must roll back to the base, surface the STALE
  // fingerprint — which the coordinator's Assign/Resume diff turns into
  // a re-download of that one slice — and the subsequent Put must heal
  // the store back to the current content.
  const CsrGraph g1 = SmallWorldConverted(600, 3);
  const CsrGraph g2 = SmallWorldConverted(600, 4);
  auto s1 = ShardedGraphStore::Build(g1, 1);
  auto s2 = ShardedGraphStore::Build(g2, 1);
  ASSERT_TRUE(s1.ok() && s2.ok());
  const std::string dir = FreshDir("spsb_failover");
  {
    PersistentShardStore disk(dir);
    ASSERT_TRUE(disk.Put(0, SliceBytes(s1->shard(0))).ok());
    ASSERT_TRUE(disk.Put(0, SliceBytes(s2->shard(0))).ok());  // record 0
  }

  // Flip a byte inside the record body (past the log header), corrupting
  // the record itself rather than appending a torn tail.
  {
    std::FILE* f = std::fopen((dir + "/shard_0.dlog").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    std::fputc(byte ^ 0x5a, f);
    std::fclose(f);
  }

  // A fresh store instance (the replacement worker) replays the log: the
  // corrupt record is ignored and the slice rolls back to the base — the
  // fingerprint is v1's, NOT v2's, so a coordinator expecting v2 would
  // re-download. Never an error, never a wedge.
  PersistentShardStore replacement(dir);
  auto loaded = replacement.Load(0);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ((*loaded)->fingerprint, ShardSliceFingerprint(s1->shard(0)));
  EXPECT_NE((*loaded)->fingerprint, ShardSliceFingerprint(s2->shard(0)));
  EXPECT_GT(replacement.corrupt_tails_ignored(), 0);

  // The re-download (a Put of the authoritative bytes) heals the store.
  ASSERT_TRUE(replacement.Put(0, SliceBytes(s2->shard(0))).ok());
  auto healed = replacement.Load(0);
  ASSERT_TRUE(healed.ok() && healed->has_value());
  EXPECT_EQ((*healed)->fingerprint, ShardSliceFingerprint(s2->shard(0)));
  EXPECT_EQ((*healed)->shard.targets, s2->shard(0).targets);
}

TEST(PersistentShardStoreTest, LogBoundToADifferentBaseIsRejectedWhole) {
  // A replacement worker may inherit a base freshly re-downloaded after
  // the old base was lost, plus a delta log still bound to the OLD base.
  // The whole log must be rejected (fingerprint binding), leaving the
  // new base's content — not a replay of records onto the wrong base.
  const CsrGraph g1 = SmallWorldConverted(600, 3);
  const CsrGraph g2 = SmallWorldConverted(600, 4);
  const CsrGraph g3 = SmallWorldConverted(600, 5);
  auto s1 = ShardedGraphStore::Build(g1, 1);
  auto s2 = ShardedGraphStore::Build(g2, 1);
  auto s3 = ShardedGraphStore::Build(g3, 1);
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  const std::string dir_old = FreshDir("spsb_rebind_old");
  {
    PersistentShardStore disk(dir_old);
    ASSERT_TRUE(disk.Put(0, SliceBytes(s1->shard(0))).ok());
    ASSERT_TRUE(disk.Put(0, SliceBytes(s2->shard(0))).ok());  // log record
  }
  const std::string dir = FreshDir("spsb_rebind");
  {
    PersistentShardStore disk(dir);
    ASSERT_TRUE(disk.Put(0, SliceBytes(s3->shard(0))).ok());  // fresh base
  }
  // Splice the OLD store's delta log (bound to v1's base) next to the new
  // v3 base — a partial restore from backup does exactly this.
  std::filesystem::copy_file(
      dir_old + "/shard_0.dlog", dir + "/shard_0.dlog",
      std::filesystem::copy_options::overwrite_existing);

  PersistentShardStore replacement(dir);
  auto loaded = replacement.Load(0);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_value());
  // The stale log must not replay its v2 record onto v3's base.
  EXPECT_EQ((*loaded)->fingerprint, ShardSliceFingerprint(s3->shard(0)));
  EXPECT_GT(replacement.corrupt_tails_ignored(), 0);
}

// --- Worker layout (the index remap) --------------------------------------

TEST(WorkerLayoutTest, SlotsCoverOwnedPlusSubscribedNotAllOfV) {
  const CsrGraph g = SmallWorldConverted(2000, 13);
  auto store = ShardedGraphStore::Build(g, 6);
  ASSERT_TRUE(store.ok());
  ASSERT_GE(store->num_shards(), 4);

  // A middle worker owning shards {1, 2}.
  std::vector<ShardedGraphStore::Shard> shards = {store->shard(1),
                                                  store->shard(2)};
  auto layout = BuildWorkerLayout(shards, g.NumVertices());
  ASSERT_TRUE(layout.ok()) << layout.status();
  EXPECT_EQ(layout->owned_begin, store->shard(1).begin);
  EXPECT_EQ(layout->owned_end, store->shard(2).end);
  EXPECT_EQ(layout->owned_count(),
            store->shard(2).end - store->shard(1).begin);

  // The whole point of the remap: state is O(owned + boundary), not O(V).
  EXPECT_GT(layout->subscription.size(), 0u);
  EXPECT_LT(layout->num_slots(), g.NumVertices());
  EXPECT_EQ(layout->num_slots(),
            layout->owned_count() +
                static_cast<int64_t>(layout->subscription.size()));

  // The subscription is exactly the strictly-ascending out-of-range
  // neighbor set.
  for (size_t i = 1; i < layout->subscription.size(); ++i) {
    EXPECT_LT(layout->subscription[i - 1], layout->subscription[i]);
  }
  for (const VertexId v : layout->subscription) {
    EXPECT_FALSE(layout->Owns(v));
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.NumVertices());
  }
}

TEST(WorkerLayoutTest, RemapSendsEveryTargetToItsCompactSlot) {
  const CsrGraph g = SmallWorldConverted(1500, 19);
  auto store = ShardedGraphStore::Build(g, 5);
  ASSERT_TRUE(store.ok());
  std::vector<ShardedGraphStore::Shard> shards = {store->shard(1),
                                                  store->shard(2)};
  auto layout = BuildWorkerLayout(shards, g.NumVertices());
  ASSERT_TRUE(layout.ok()) << layout.status();

  for (auto& shard : shards) {
    const std::vector<VertexId> global_targets = shard.targets;
    ASSERT_TRUE(RemapTargetsToSlots(*layout, &shard).ok());
    ASSERT_EQ(shard.targets.size(), global_targets.size());
    for (size_t i = 0; i < shard.targets.size(); ++i) {
      const VertexId slot = shard.targets[i];
      ASSERT_GE(slot, 0);
      ASSERT_LT(slot, layout->num_slots());
      // Each slot maps back to the global id it replaced.
      const VertexId global =
          slot < layout->owned_count()
              ? layout->owned_begin + slot
              : layout->subscription[static_cast<size_t>(
                    slot - layout->owned_count())];
      EXPECT_EQ(global, global_targets[i]) << "i=" << i;
    }
  }
}

TEST(WorkerLayoutTest, RejectsGapsAndForeignTargets) {
  const CsrGraph g = SmallWorldConverted(2000, 13);
  auto store = ShardedGraphStore::Build(g, 6);
  ASSERT_TRUE(store.ok());

  // Non-contiguous assignment (a gap between shards 1 and 3).
  std::vector<ShardedGraphStore::Shard> gap = {store->shard(1),
                                               store->shard(3)};
  EXPECT_FALSE(BuildWorkerLayout(gap, g.NumVertices()).ok());

  // A target outside [0, n) can never be resolved.
  std::vector<ShardedGraphStore::Shard> bad = {store->shard(0)};
  ASSERT_FALSE(bad[0].targets.empty());
  bad[0].targets[0] = g.NumVertices() + 5;
  EXPECT_FALSE(BuildWorkerLayout(bad, g.NumVertices()).ok());

  // Remap against a layout that does not cover the shard's neighbors.
  auto layout = BuildWorkerLayout(
      std::vector<ShardedGraphStore::Shard>{store->shard(1)},
      g.NumVertices());
  ASSERT_TRUE(layout.ok());
  ShardedGraphStore::Shard foreign = store->shard(4);
  EXPECT_FALSE(RemapTargetsToSlots(*layout, &foreign).ok());
}

TEST(WorkerLayoutTest, EmptyAssignmentYieldsEmptyLayout) {
  auto layout = BuildWorkerLayout({}, 1000);
  ASSERT_TRUE(layout.ok()) << layout.status();
  EXPECT_EQ(layout->owned_count(), 0);
  EXPECT_EQ(layout->num_slots(), 0);
  EXPECT_EQ(layout->num_blocks(), 0);
  EXPECT_TRUE(layout->subscription.empty());
}

}  // namespace
}  // namespace spinner
