// The LPA kernel's two label scans must be interchangeable per vertex:
// PickLabelSparse (touched-list walk, the scalar reference) and
// PickLabelDense (all-k masked SIMD max) score the same candidate set with
// the same expressions and an order-independent tie break, so they must
// agree bit-for-bit on every input — including exact-score ties and any
// permutation of the touched list. The table-fill helpers must match the
// direct per-label computation exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "graph/types.h"
#include "spinner/lpa_kernel.h"

namespace spinner {
namespace {

struct KernelInput {
  std::vector<int64_t> freq;
  std::vector<PartitionId> touched;  // labels with freq > 0
  PartitionId current = 0;
  double inv_degree = 0.0;
  std::vector<double> penalty;
};

KernelInput RandomInput(std::mt19937_64& rng, int k, bool force_ties) {
  KernelInput in;
  in.freq.assign(static_cast<size_t>(k), 0);
  in.penalty.assign(static_cast<size_t>(k), 0.0);
  std::uniform_int_distribution<int> label_dist(0, k - 1);
  std::uniform_int_distribution<int64_t> weight_dist(1, 5);
  const int touched_count = 1 + static_cast<int>(rng() % k);
  for (int i = 0; i < touched_count; ++i) {
    const PartitionId l = label_dist(rng);
    if (in.freq[l] == 0) in.touched.push_back(l);
    in.freq[l] += weight_dist(rng);
  }
  if (force_ties) {
    // Equal frequencies + zero penalties make every touched label an
    // exact-score tie, exercising the TieKey resolution path.
    for (const PartitionId l : in.touched) in.freq[l] = 3;
  } else {
    std::uniform_real_distribution<double> pen_dist(0.0, 0.5);
    for (int l = 0; l < k; ++l) in.penalty[l] = pen_dist(rng);
  }
  int64_t deg = 0;
  for (const int64_t f : in.freq) deg += f;
  in.inv_degree = 1.0 / static_cast<double>(deg);
  // current may or may not appear in the neighborhood.
  in.current = label_dist(rng);
  return in;
}

TEST(LpaKernelTest, SparseAndDenseScansAgreeOnRandomInputs) {
  std::mt19937_64 rng(1234);
  for (const bool force_ties : {false, true}) {
    for (int trial = 0; trial < 2000; ++trial) {
      const int k = 2 + static_cast<int>(rng() % 15);
      const KernelInput in = RandomInput(rng, k, force_ties);
      const uint64_t seed = rng();
      const int64_t superstep = 1 + static_cast<int64_t>(rng() % 9);
      const VertexId v = static_cast<VertexId>(rng() % 100000);
      const double current_score = lpa::Score(
          in.freq[in.current], in.inv_degree, in.penalty[in.current]);

      const lpa::LabelChoice sparse = lpa::PickLabelSparse(
          in.freq, in.touched, in.current, current_score, in.inv_degree,
          in.penalty, seed, superstep, v);
      std::vector<double> score_buf(static_cast<size_t>(k), 0.0);
      const lpa::LabelChoice dense = lpa::PickLabelDense(
          in.freq, in.current, current_score, in.inv_degree, in.penalty,
          score_buf, seed, superstep, v);

      ASSERT_EQ(sparse.better, dense.better)
          << "k=" << k << " trial=" << trial << " ties=" << force_ties;
      ASSERT_EQ(sparse.label, dense.label)
          << "k=" << k << " trial=" << trial << " ties=" << force_ties;
    }
  }
}

TEST(LpaKernelTest, SparseScanIsTouchedOrderIndependent) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    const int k = 3 + static_cast<int>(rng() % 12);
    KernelInput in = RandomInput(rng, k, trial % 2 == 0);
    const uint64_t seed = rng();
    const VertexId v = static_cast<VertexId>(trial);
    const double current_score = lpa::Score(in.freq[in.current],
                                            in.inv_degree,
                                            in.penalty[in.current]);
    const lpa::LabelChoice reference = lpa::PickLabelSparse(
        in.freq, in.touched, in.current, current_score, in.inv_degree,
        in.penalty, seed, /*superstep=*/3, v);
    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      std::shuffle(in.touched.begin(), in.touched.end(), rng);
      const lpa::LabelChoice got = lpa::PickLabelSparse(
          in.freq, in.touched, in.current, current_score, in.inv_degree,
          in.penalty, seed, /*superstep=*/3, v);
      ASSERT_EQ(got.better, reference.better);
      ASSERT_EQ(got.label, reference.label);
    }
  }
}

TEST(LpaKernelTest, FillPenaltiesMatchesDirectComputation) {
  const std::vector<int64_t> loads = {10, 0, 7, 123456789, 3};
  const std::vector<double> capacities = {100.0, 50.0, 0.0, 1e9, -1.0};
  std::vector<double> penalty(loads.size(), -1.0);
  lpa::FillPenalties(loads, capacities, penalty);
  for (size_t l = 0; l < loads.size(); ++l) {
    const double want =
        capacities[l] > 0
            ? static_cast<double>(loads[l]) / capacities[l]
            : 0.0;
    EXPECT_EQ(penalty[l], want) << "l=" << l;
  }
}

TEST(LpaKernelTest, FillMigrationProbabilitiesMatchesDirectComputation) {
  const std::vector<int64_t> loads = {10, 90, 100, 7};
  const std::vector<double> capacities = {100.0, 100.0, 100.0, 0.0};
  const std::vector<int64_t> wanting = {45, 20, 5, 9};
  std::vector<double> p(loads.size(), -1.0);
  lpa::FillMigrationProbabilities(loads, capacities, wanting, p);
  for (size_t l = 0; l < loads.size(); ++l) {
    const double want = lpa::MigrationProbability(
        capacities[l] - static_cast<double>(loads[l]),
        static_cast<double>(wanting[l]));
    EXPECT_EQ(p[l], want) << "l=" << l;
  }
}

TEST(LpaKernelTest, ScoreHoistsTheDivisionWithoutChangingEq8) {
  // Score(freq, 1/deg, load/cap) is Eq. 8 with both divisions hoisted;
  // spot-check against the longhand form on benign values where the
  // reassociation is exact.
  EXPECT_EQ(lpa::Score(4, 1.0 / 8.0, 0.25), 4.0 / 8.0 - 0.25);
  EXPECT_EQ(lpa::Score(0, 1.0 / 2.0, 0.0), 0.0);
}

}  // namespace
}  // namespace spinner
