// Property-based sweeps (TEST_P over seeds): structural invariants that
// must hold on arbitrary random inputs, complementing the example-based
// suites.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/hash_partitioner.h"
#include "graph/conversion.h"
#include "graph/delta.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "pregel/topology.h"
#include "spinner/initial_assignment.h"
#include "spinner/metrics.h"

namespace spinner {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 1337, 90210));

TEST_P(SeedSweep, ConversionInvariants) {
  const uint64_t seed = GetParam();
  auto rmat = RMat(9, 4, 0.45, 0.25, 0.15, seed);
  ASSERT_TRUE(rmat.ok());
  EdgeList directed = rmat->edges;
  RemoveSelfLoops(&directed);
  SortAndDedup(&directed);

  auto g = ConvertToWeightedUndirected(rmat->num_vertices, directed);
  ASSERT_TRUE(g.ok());
  // 1. Symmetric with matching weights.
  EXPECT_TRUE(g->IsSymmetric());
  // 2. Every directed edge contributes exactly 2 to the total weight.
  EXPECT_EQ(g->TotalArcWeight(),
            2 * static_cast<int64_t>(directed.size()));
  // 3. Weights are only 1 or 2; no self-loops survive.
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (EdgeWeight w : g->Weights(v)) EXPECT_TRUE(w == 1 || w == 2);
    EXPECT_FALSE(g->HasArc(v, v));
  }
  // 4. Weighted degrees sum to the total weight.
  int64_t degree_sum = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    degree_sum += g->WeightedDegree(v);
  }
  EXPECT_EQ(degree_sum, g->TotalArcWeight());
}

TEST_P(SeedSweep, MetricsIdentities) {
  const uint64_t seed = GetParam();
  auto ws = WattsStrogatz(500, 4, 0.3, seed);
  ASSERT_TRUE(ws.ok());
  auto g = BuildSymmetric(ws->num_vertices, ws->edges);
  ASSERT_TRUE(g.ok());

  for (int k : {2, 5, 16}) {
    auto labels = RandomAssignment(g->NumVertices(), k, seed ^ k);
    auto m = ComputeMetrics(*g, labels, k, 1.05);
    ASSERT_TRUE(m.ok());
    // Σ loads = total weight; φ = 1 − cut/total; ρ ≥ 1; φ ∈ [0,1].
    EXPECT_EQ(std::accumulate(m->loads.begin(), m->loads.end(), int64_t{0}),
              m->total_weight);
    EXPECT_NEAR(m->phi,
                1.0 - static_cast<double>(m->cut_weight) /
                          static_cast<double>(m->total_weight),
                1e-12);
    EXPECT_GE(m->rho, 1.0);
    EXPECT_GE(m->phi, 0.0);
    EXPECT_LE(m->phi, 1.0);
  }
}

TEST_P(SeedSweep, PartitioningDifferenceIsAMetric) {
  const uint64_t seed = GetParam();
  const int64_t n = 300;
  auto a = RandomAssignment(n, 8, seed);
  auto b = RandomAssignment(n, 8, seed + 1);
  auto c = RandomAssignment(n, 8, seed + 2);
  const double dab = *PartitioningDifference(a, b);
  const double dba = *PartitioningDifference(b, a);
  const double dac = *PartitioningDifference(a, c);
  const double dbc = *PartitioningDifference(b, c);
  EXPECT_DOUBLE_EQ(dab, dba);                       // symmetry
  EXPECT_DOUBLE_EQ(*PartitioningDifference(a, a), 0.0);  // identity
  EXPECT_LE(dac, dab + dbc + 1e-12);                // triangle inequality
  EXPECT_GE(dab, 0.0);
  EXPECT_LE(dab, 1.0);
}

TEST_P(SeedSweep, ElasticExpandThenShrinkStaysValid) {
  const uint64_t seed = GetParam();
  const int64_t n = 1000;
  auto initial = RandomAssignment(n, 6, seed);
  auto expanded = ElasticExpand(initial, 6, 10, seed);
  ASSERT_TRUE(expanded.ok());
  auto shrunk = ElasticShrink(*expanded, 10, 4, seed);
  ASSERT_TRUE(shrunk.ok());
  for (PartitionId l : *shrunk) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  // Vertices that never migrated out of [0, 4) kept their label.
  for (int64_t v = 0; v < n; ++v) {
    if ((*expanded)[v] == initial[v] && initial[v] < 4) {
      EXPECT_EQ((*shrunk)[v], initial[v]);
    }
  }
}

TEST_P(SeedSweep, DeltaApplicationPreservesEdgeAccounting) {
  const uint64_t seed = GetParam();
  auto er = ErdosRenyi(200, 900, seed);
  ASSERT_TRUE(er.ok());
  auto delta = RandomEdgeAdditions(200, er->edges, 50, seed + 9);
  auto applied = ApplyDelta(200, er->edges, delta);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->size(), er->edges.size() + 50);

  // Removing what was added restores the original multiset.
  GraphDelta removal;
  removal.removed_edges = delta.added_edges;
  auto restored = ApplyDelta(200, *applied, removal);
  ASSERT_TRUE(restored.ok());
  EdgeList x = *restored;
  EdgeList y = er->edges;
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  EXPECT_EQ(x, y);
}

TEST_P(SeedSweep, HashPlacementCoversAllWorkers) {
  const uint64_t seed = GetParam();
  const int workers = 3 + static_cast<int>(seed % 6);
  auto placement = pregel::HashPlacement(workers);
  std::vector<int64_t> counts(workers, 0);
  for (VertexId v = 0; v < 5000; ++v) {
    const pregel::WorkerId w = placement(v);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, workers);
    ++counts[w];
  }
  for (int64_t count : counts) {
    EXPECT_NEAR(count, 5000 / workers, 5000 / workers / 2);
  }
}

TEST_P(SeedSweep, GeneratorsProduceValidEdgeLists) {
  const uint64_t seed = GetParam();
  auto ws = WattsStrogatz(400, 3, 0.4, seed);
  auto ba = BarabasiAlbert(400, 4, 3, seed);
  auto er = ErdosRenyi(400, 1000, seed);
  ASSERT_TRUE(ws.ok() && ba.ok() && er.ok());
  for (const GeneratedGraph* g :
       {&ws.value(), &ba.value(), &er.value()}) {
    EXPECT_TRUE(EdgesInRange(g->edges, g->num_vertices));
    for (const Edge& e : g->edges) EXPECT_NE(e.src, e.dst);
  }
}

}  // namespace
}  // namespace spinner
