#include "graph/csr_graph.h"

#include <gtest/gtest.h>

#include "graph/edge_list.h"

namespace spinner {
namespace {

TEST(EdgeListTest, MaxVertexId) {
  EXPECT_EQ(MaxVertexId({}), -1);
  EXPECT_EQ(MaxVertexId({{0, 5}, {3, 1}}), 5);
  EXPECT_EQ(MaxVertexId({{7, 2}}), 7);
}

TEST(EdgeListTest, SortAndDedup) {
  EdgeList edges = {{1, 2}, {0, 1}, {1, 2}, {0, 1}, {2, 0}};
  SortAndDedup(&edges);
  EdgeList expected = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_EQ(edges, expected);
}

TEST(EdgeListTest, RemoveSelfLoops) {
  EdgeList edges = {{0, 0}, {0, 1}, {1, 1}, {1, 2}};
  RemoveSelfLoops(&edges);
  EdgeList expected = {{0, 1}, {1, 2}};
  EXPECT_EQ(edges, expected);
}

TEST(EdgeListTest, OutDegrees) {
  auto deg = OutDegrees({{0, 1}, {0, 2}, {2, 0}}, 3);
  EXPECT_EQ(deg, (std::vector<int64_t>{2, 0, 1}));
}

TEST(EdgeListTest, EdgesInRange) {
  EXPECT_TRUE(EdgesInRange({{0, 1}}, 2));
  EXPECT_FALSE(EdgesInRange({{0, 2}}, 2));
  EXPECT_FALSE(EdgesInRange({{-1, 0}}, 2));
  EXPECT_TRUE(EdgesInRange({}, 0));
}

TEST(CsrGraphTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0);
  EXPECT_EQ(g->NumArcs(), 0);
  EXPECT_EQ(g->TotalArcWeight(), 0);
}

TEST(CsrGraphTest, VerticesWithoutEdges) {
  auto g = CsrGraph::FromEdges(3, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3);
  EXPECT_EQ(g->OutDegree(1), 0);
  EXPECT_TRUE(g->Neighbors(1).empty());
}

TEST(CsrGraphTest, AdjacencySortedByTarget) {
  auto g = CsrGraph::FromEdges(4, {{1, 3}, {1, 0}, {1, 2}, {0, 2}});
  ASSERT_TRUE(g.ok());
  auto nbrs = g->Neighbors(1);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
  EXPECT_EQ(g->OutDegree(0), 1);
  EXPECT_EQ(g->OutDegree(2), 0);
}

TEST(CsrGraphTest, WeightsFollowEdges) {
  const EdgeList edges = {{0, 1}, {0, 2}, {1, 0}};
  const std::vector<EdgeWeight> weights = {2, 1, 2};
  auto g = CsrGraph::FromEdges(3, edges, weights);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->WeightedDegree(0), 3);
  EXPECT_EQ(g->WeightedDegree(1), 2);
  EXPECT_EQ(g->TotalArcWeight(), 5);
  auto w0 = g->Weights(0);
  ASSERT_EQ(w0.size(), 2u);
  EXPECT_EQ(w0[0], 2u);  // arc to 1
  EXPECT_EQ(w0[1], 1u);  // arc to 2
}

TEST(CsrGraphTest, DefaultWeightIsOne) {
  auto g = CsrGraph::FromEdges(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->TotalArcWeight(), 1);
  EXPECT_EQ(g->Weights(0)[0], 1u);
}

TEST(CsrGraphTest, RejectsOutOfRangeEdge) {
  EXPECT_FALSE(CsrGraph::FromEdges(2, {{0, 2}}).ok());
  EXPECT_FALSE(CsrGraph::FromEdges(2, {{-1, 0}}).ok());
  EXPECT_FALSE(CsrGraph::FromEdges(-1, {}).ok());
}

TEST(CsrGraphTest, RejectsWeightLengthMismatch) {
  const std::vector<EdgeWeight> weights = {1};
  EXPECT_FALSE(CsrGraph::FromEdges(2, {{0, 1}, {1, 0}}, weights).ok());
}

TEST(CsrGraphTest, KeepsParallelArcs) {
  auto g = CsrGraph::FromEdges(2, {{0, 1}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutDegree(0), 2);
  EXPECT_EQ(g->NumArcs(), 2);
}

TEST(CsrGraphTest, HasArc) {
  auto g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasArc(0, 1));
  EXPECT_FALSE(g->HasArc(1, 0));
  EXPECT_TRUE(g->HasArc(1, 2));
  EXPECT_FALSE(g->HasArc(0, 2));
}

TEST(CsrGraphTest, IsSymmetricDetectsAsymmetry) {
  auto sym = CsrGraph::FromEdges(2, {{0, 1}, {1, 0}});
  ASSERT_TRUE(sym.ok());
  EXPECT_TRUE(sym->IsSymmetric());

  auto asym = CsrGraph::FromEdges(2, {{0, 1}});
  ASSERT_TRUE(asym.ok());
  EXPECT_FALSE(asym->IsSymmetric());
}

TEST(CsrGraphTest, IsSymmetricChecksWeights) {
  const std::vector<EdgeWeight> mismatched = {2, 1};
  auto g = CsrGraph::FromEdges(2, {{0, 1}, {1, 0}}, mismatched);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->IsSymmetric());
}

TEST(CsrGraphTest, ToEdgeListRoundTrips) {
  const EdgeList edges = {{0, 1}, {1, 2}, {2, 0}};
  auto g = CsrGraph::FromEdges(3, edges);
  ASSERT_TRUE(g.ok());
  EdgeList out = g->ToEdgeList();
  SortAndDedup(&out);
  EdgeList expected = edges;
  SortAndDedup(&expected);
  EXPECT_EQ(out, expected);
}

TEST(CsrGraphTest, ArcBeginConsistentWithDegrees) {
  auto g = CsrGraph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ArcBegin(0), 0);
  EXPECT_EQ(g->ArcBegin(1), 2);
  EXPECT_EQ(g->ArcBegin(2), 3);
}

}  // namespace
}  // namespace spinner
