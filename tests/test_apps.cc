// Analytics programs (the §V.F workloads) validated against sequential
// references: PageRank vs power iteration, SSSP vs BFS, WCC vs union-find.
#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "pregel/topology.h"

namespace spinner::apps {
namespace {

CsrGraph MakeSymmetric(const GeneratedGraph& g) {
  auto converted = BuildSymmetric(g.num_vertices, g.edges);
  SPINNER_CHECK(converted.ok());
  return std::move(converted).value();
}

// --- PageRank --------------------------------------------------------------

TEST(PageRankTest, MatchesReferenceOnSmallWorldGraph) {
  auto ws = WattsStrogatz(300, 4, 0.3, 12);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeSymmetric(*ws);

  pregel::EngineConfig config;
  config.num_workers = 4;
  PageRankEngine engine(
      g, config, pregel::HashPlacement(4),
      [](VertexId) { return PageRankVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  PageRankProgram program(20);
  engine.Run(program);

  auto reference = PageRankReference(g, 20);
  engine.ForEachVertex([&](VertexId v, const PageRankVertex& val) {
    EXPECT_NEAR(val.rank, reference[v], 1e-9) << "vertex " << v;
  });
}

TEST(PageRankTest, HandlesDanglingVertices) {
  // Directed path 0 -> 1 -> 2; vertex 2 dangles.
  auto g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  pregel::EngineConfig config;
  config.num_workers = 2;
  PageRankEngine engine(
      *g, config, pregel::HashPlacement(2),
      [](VertexId) { return PageRankVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  PageRankProgram program(30);
  engine.Run(program);

  auto reference = PageRankReference(*g, 30);
  double engine_total = 0;
  engine.ForEachVertex([&](VertexId v, const PageRankVertex& val) {
    EXPECT_NEAR(val.rank, reference[v], 1e-9);
    engine_total += val.rank;
  });
  // Dangling redistribution keeps total mass ≈ |V|.
  EXPECT_NEAR(engine_total, 3.0, 1e-6);
}

TEST(PageRankTest, HubAccumulatesRank) {
  auto star = Star(20);
  CsrGraph g = MakeSymmetric(star);
  pregel::EngineConfig config;
  config.num_workers = 3;
  PageRankEngine engine(
      g, config, pregel::HashPlacement(3),
      [](VertexId) { return PageRankVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  PageRankProgram program(25);
  engine.Run(program);
  const double hub = engine.Value(0).rank;
  const double leaf = engine.Value(1).rank;
  EXPECT_GT(hub, 5.0 * leaf);
}

TEST(PageRankTest, RunsExactlyRequestedSupersteps) {
  CsrGraph g = MakeSymmetric(Ring(10));
  pregel::EngineConfig config;
  config.num_workers = 2;
  PageRankEngine engine(
      g, config, pregel::HashPlacement(2),
      [](VertexId) { return PageRankVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  PageRankProgram program(20);
  auto stats = engine.Run(program);
  EXPECT_EQ(stats.supersteps, 20);
}

// --- SSSP -------------------------------------------------------------------

TEST(SsspTest, MatchesBfsReference) {
  auto ws = WattsStrogatz(400, 3, 0.2, 8);
  ASSERT_TRUE(ws.ok());
  CsrGraph g = MakeSymmetric(*ws);
  pregel::EngineConfig config;
  config.num_workers = 4;
  SsspEngine engine(
      g, config, pregel::HashPlacement(4),
      [](VertexId) { return SsspVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  SsspProgram program(/*source=*/0);
  engine.Run(program);
  auto reference = BfsReference(g, 0);
  engine.ForEachVertex([&](VertexId v, const SsspVertex& val) {
    EXPECT_EQ(val.distance, reference[v]) << "vertex " << v;
  });
}

TEST(SsspTest, UnreachableVerticesStayInfinite) {
  // Two disjoint edges: 0-1, 2-3.
  auto g = BuildSymmetric(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  pregel::EngineConfig config;
  config.num_workers = 2;
  SsspEngine engine(
      *g, config, pregel::HashPlacement(2),
      [](VertexId) { return SsspVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  SsspProgram program(0);
  engine.Run(program);
  EXPECT_EQ(engine.Value(0).distance, 0);
  EXPECT_EQ(engine.Value(1).distance, 1);
  EXPECT_EQ(engine.Value(2).distance, kInfDistance);
  EXPECT_EQ(engine.Value(3).distance, kInfDistance);
}

TEST(SsspTest, FrontierTerminatesInDiameterSupersteps) {
  CsrGraph g = MakeSymmetric(Path(30));
  pregel::EngineConfig config;
  config.num_workers = 2;
  SsspEngine engine(
      g, config, pregel::HashPlacement(2),
      [](VertexId) { return SsspVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  SsspProgram program(0);
  auto stats = engine.Run(program);
  // 29 hops + 1 quiescent superstep (plus slack for halting mechanics).
  EXPECT_LE(stats.supersteps, 32);
  EXPECT_EQ(engine.Value(29).distance, 29);
}

// --- WCC --------------------------------------------------------------------

TEST(WccTest, MatchesUnionFindReference) {
  // Erdős-Rényi below the connectivity threshold: many components.
  auto er = ErdosRenyi(300, 150, 44);
  ASSERT_TRUE(er.ok());
  CsrGraph g = MakeSymmetric(*er);
  pregel::EngineConfig config;
  config.num_workers = 4;
  WccEngine engine(
      g, config, pregel::HashPlacement(4),
      [](VertexId) { return WccVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  WccProgram program;
  engine.Run(program);
  auto reference = WccReference(g);
  engine.ForEachVertex([&](VertexId v, const WccVertex& val) {
    EXPECT_EQ(val.component, reference[v]) << "vertex " << v;
  });
}

TEST(WccTest, SingleComponentGetsMinimumId) {
  CsrGraph g = MakeSymmetric(Ring(64));
  pregel::EngineConfig config;
  config.num_workers = 3;
  WccEngine engine(
      g, config, pregel::HashPlacement(3),
      [](VertexId) { return WccVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  WccProgram program;
  engine.Run(program);
  engine.ForEachVertex([](VertexId, const WccVertex& val) {
    EXPECT_EQ(val.component, 0);
  });
}

TEST(WccTest, IsolatedVerticesAreOwnComponents) {
  auto g = BuildSymmetric(5, {{0, 1}});
  ASSERT_TRUE(g.ok());
  pregel::EngineConfig config;
  config.num_workers = 2;
  WccEngine engine(
      *g, config, pregel::HashPlacement(2),
      [](VertexId) { return WccVertex{}; },
      [](VertexId, VertexId, EdgeWeight) { return char{}; });
  WccProgram program;
  engine.Run(program);
  EXPECT_EQ(engine.Value(0).component, 0);
  EXPECT_EQ(engine.Value(1).component, 0);
  EXPECT_EQ(engine.Value(2).component, 2);
  EXPECT_EQ(engine.Value(3).component, 3);
  EXPECT_EQ(engine.Value(4).component, 4);
}

}  // namespace
}  // namespace spinner::apps
