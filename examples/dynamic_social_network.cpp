// Dynamic social network (paper §III.D / §V.C scenario), streamed: a
// friendship graph keeps gaining users and edges, but here the churn
// arrives as a *live event stream* instead of pre-batched deltas. A
// producer thread plays each day's events (timestamped edge additions,
// new-user signups, the occasional unfriend) into an IngestionService,
// which windows them behind an event-count watermark, coalesces
// duplicates and transient edges, and applies each window through the
// session's incremental ApplyDelta — the operator never builds a
// GraphDelta by hand. At each day boundary the main thread Drain()s the
// service (the stream analogue of an fsync) and reads the maintained
// φ/ρ plus the service's ingest stats.
//
//   ./dynamic_social_network [--days=5] [--k=16] [--daily-edges-pct=2]
//       [--watermark=256]
#include <cstdio>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/session.h"
#include "stream/ingestion_service.h"

using namespace spinner;
using spinner::stream::EdgeEvent;
using spinner::stream::IngestionService;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int days = static_cast<int>(cli.GetInt("days", 5));
  const int k = static_cast<int>(cli.GetInt("k", 16));
  const double daily_pct = cli.GetDouble("daily-edges-pct", 2.0);
  const int watermark = static_cast<int>(cli.GetInt("watermark", 256));

  // Day 0: the social network as it exists today.
  auto social = WattsStrogatz(10000, 8, 0.3, 7);
  SPINNER_CHECK_OK(social.status());

  SpinnerConfig config;
  config.num_partitions = k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(session.Open(social->num_vertices, social->edges,
                                social->directed));
  std::printf("day 0: |V|=%lld |E|=%zu phi=%.3f rho=%.3f (%d iterations "
              "from scratch)\n",
              static_cast<long long>(session.num_vertices()),
              session.edges().size(), session.last_result().metrics.phi,
              session.last_result().metrics.rho,
              session.last_result().iterations);

  stream::IngestionOptions options;
  options.policy = std::make_unique<stream::EventCountPolicy>(watermark);
  options.queue_capacity = 1024;
  IngestionService service(&session, std::move(options));
  SPINNER_CHECK_OK(service.Start());

  for (int day = 1; day <= days; ++day) {
    // Today's churn, as individual events: new friendships (daily_pct% of
    // the current edge count, some submitted twice — clients retry), 200
    // new users who befriend existing ones, and a few friendships that
    // form and dissolve within the day (the service coalesces both the
    // retries and the transients away before they reach the partitioner).
    const int64_t n = session.num_vertices();
    const GraphDelta fresh = RandomEdgeAdditions(
        n, session.edges(),
        static_cast<int64_t>(
            static_cast<double>(session.edges().size()) * daily_pct / 100.0),
        1000 + static_cast<uint64_t>(day));
    const std::vector<PartitionId> before = session.assignment();

    std::thread producer([&service, &fresh, n, day] {
      for (size_t i = 0; i < fresh.added_edges.size(); ++i) {
        const Edge& e = fresh.added_edges[i];
        SPINNER_CHECK_OK(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)));
        if (i % 50 == 0) {  // client retry: a duplicate submission
          SPINNER_CHECK_OK(service.Submit(EdgeEvent::AddEdge(e.src, e.dst)));
        }
        if (i % 97 == 0) {  // friendship that comes and goes within a day
          SPINNER_CHECK_OK(service.Submit(EdgeEvent::AddEdge(e.dst, e.src)));
          SPINNER_CHECK_OK(
              service.Submit(EdgeEvent::RemoveEdge(e.dst, e.src)));
        }
      }
      SPINNER_CHECK_OK(service.Submit(EdgeEvent::AddVertices(200)));
      for (int64_t i = 0; i < 200; ++i) {
        SPINNER_CHECK_OK(service.Submit(
            EdgeEvent::AddEdge(n + i, (i * 37 + day * 811) % n)));
      }
    });
    producer.join();

    // Day boundary: drain the stream so every submitted event is applied,
    // then inspect the quiescent session.
    SPINNER_CHECK_OK(service.Drain());
    const stream::IngestStats stats = service.stats();

    const std::span<const PartitionId> new_span(session.assignment().data(),
                                                before.size());
    auto moved = PartitioningDifference(before, new_span);
    SPINNER_CHECK_OK(moved.status());

    std::printf(
        "day %d: |V|=%lld |E|=%zu phi=%.3f rho=%.3f | %lld windows, "
        "%lld events (%lld coalesced away), max staleness %.1f ms, "
        "%.1f%% of existing vertices moved\n",
        day, static_cast<long long>(session.num_vertices()),
        session.edges().size(), stats.last_phi, stats.last_rho,
        static_cast<long long>(stats.windows_applied),
        static_cast<long long>(stats.events_ingested),
        static_cast<long long>(stats.events_coalesced),
        static_cast<double>(stats.max_staleness_micros) / 1000.0,
        100.0 * *moved);
  }
  SPINNER_CHECK_OK(service.Stop());

  const stream::IngestStats final_stats = service.stats();
  std::printf(
      "\nstream totals: %lld events in %lld windows, queue high-water "
      "%lld, mean apply %.1f ms\n",
      static_cast<long long>(final_stats.events_ingested),
      static_cast<long long>(final_stats.windows_applied),
      static_cast<long long>(final_stats.queue_high_water),
      final_stats.windows_applied > 0
          ? static_cast<double>(final_stats.total_apply_micros) / 1000.0 /
                static_cast<double>(final_stats.windows_applied)
          : 0.0);
  std::printf("adaptation kept locality near the from-scratch level while "
              "moving only a small fraction of vertices each day.\n");
  return 0;
}
