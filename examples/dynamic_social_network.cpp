// Dynamic social network (paper §III.D / §V.C scenario): a friendship
// graph keeps gaining users and edges day after day; the operator adapts
// the partitioning incrementally instead of repartitioning from scratch,
// keeping locality high while barely shuffling vertices.
//
//   ./dynamic_social_network [--days=5] [--k=16] [--daily-edges-pct=2]
#include <cstdio>

#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

using namespace spinner;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int days = static_cast<int>(cli.GetInt("days", 5));
  const int k = static_cast<int>(cli.GetInt("k", 16));
  const double daily_pct = cli.GetDouble("daily-edges-pct", 2.0);

  // Day 0: the social network as it exists today.
  auto social = WattsStrogatz(10000, 8, 0.3, 7);
  SPINNER_CHECK_OK(social.status());
  EdgeList edges = social->edges;
  int64_t num_vertices = social->num_vertices;

  auto converted = BuildSymmetric(num_vertices, edges);
  SPINNER_CHECK_OK(converted.status());

  SpinnerConfig config;
  config.num_partitions = k;
  SpinnerPartitioner partitioner(config);
  auto current = partitioner.Partition(*converted);
  SPINNER_CHECK_OK(current.status());
  std::printf("day 0: |V|=%lld |E|=%zu phi=%.3f rho=%.3f (%d iterations "
              "from scratch)\n",
              static_cast<long long>(num_vertices), edges.size(),
              current->metrics.phi, current->metrics.rho,
              current->iterations);

  for (int day = 1; day <= days; ++day) {
    // New friendships form (daily_pct% of the current edge count) and a
    // few hundred new users join, each befriending existing users.
    GraphDelta delta = RandomEdgeAdditions(
        num_vertices, edges,
        static_cast<int64_t>(static_cast<double>(edges.size()) * daily_pct /
                             100.0),
        1000 + day);
    delta.num_new_vertices = 200;
    for (int64_t i = 0; i < 200; ++i) {
      delta.added_edges.push_back(
          {num_vertices + i, (i * 37 + day * 811) % num_vertices});
    }

    auto new_edges = ApplyDelta(num_vertices, edges, delta);
    SPINNER_CHECK_OK(new_edges.status());
    edges = std::move(new_edges).value();
    num_vertices += delta.num_new_vertices;

    auto new_converted = BuildSymmetric(num_vertices, edges);
    SPINNER_CHECK_OK(new_converted.status());

    auto adapted =
        partitioner.Repartition(*new_converted, current->assignment);
    SPINNER_CHECK_OK(adapted.status());

    // How many existing vertices had to move to a different machine?
    const std::span<const PartitionId> old_span(
        current->assignment.data(), current->assignment.size());
    const std::span<const PartitionId> new_span(
        adapted->assignment.data(), current->assignment.size());
    auto moved = PartitioningDifference(old_span, new_span);
    SPINNER_CHECK_OK(moved.status());

    std::printf("day %d: |V|=%lld |E|=%zu phi=%.3f rho=%.3f | %d "
                "iterations, %.1f%% of existing vertices moved\n",
                day, static_cast<long long>(num_vertices), edges.size(),
                adapted->metrics.phi, adapted->metrics.rho,
                adapted->iterations, 100.0 * *moved);
    current = std::move(adapted);
  }
  std::printf("\nadaptation kept locality near the from-scratch level while "
              "moving only a small fraction of vertices each day.\n");
  return 0;
}
