// Dynamic social network (paper §III.D / §V.C scenario): a friendship
// graph keeps gaining users and edges day after day; the operator adapts
// the partitioning incrementally instead of repartitioning from scratch,
// keeping locality high while barely shuffling vertices.
//
// Written against PartitioningSession: the session owns the edge list and
// the assignment, so a day's churn is one GraphDelta + one ApplyDelta()
// call instead of hand-threading edge lists, conversions and labels.
//
//   ./dynamic_social_network [--days=5] [--k=16] [--daily-edges-pct=2]
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "spinner/session.h"

using namespace spinner;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int days = static_cast<int>(cli.GetInt("days", 5));
  const int k = static_cast<int>(cli.GetInt("k", 16));
  const double daily_pct = cli.GetDouble("daily-edges-pct", 2.0);

  // Day 0: the social network as it exists today.
  auto social = WattsStrogatz(10000, 8, 0.3, 7);
  SPINNER_CHECK_OK(social.status());

  SpinnerConfig config;
  config.num_partitions = k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(session.Open(social->num_vertices, social->edges,
                                social->directed));
  std::printf("day 0: |V|=%lld |E|=%zu phi=%.3f rho=%.3f (%d iterations "
              "from scratch)\n",
              static_cast<long long>(session.num_vertices()),
              session.edges().size(), session.last_result().metrics.phi,
              session.last_result().metrics.rho,
              session.last_result().iterations);

  for (int day = 1; day <= days; ++day) {
    // New friendships form (daily_pct% of the current edge count) and a
    // few hundred new users join, each befriending existing users.
    const int64_t n = session.num_vertices();
    GraphDelta delta = RandomEdgeAdditions(
        n, session.edges(),
        static_cast<int64_t>(
            static_cast<double>(session.edges().size()) * daily_pct / 100.0),
        1000 + day);
    delta.AddVertex(200);
    for (int64_t i = 0; i < 200; ++i) {
      delta.AddEdge(n + i, (i * 37 + day * 811) % n);
    }

    const std::vector<PartitionId> before = session.assignment();
    SPINNER_CHECK_OK(session.ApplyDelta(delta));

    // How many existing vertices had to move to a different machine?
    const std::span<const PartitionId> new_span(session.assignment().data(),
                                                before.size());
    auto moved = PartitioningDifference(before, new_span);
    SPINNER_CHECK_OK(moved.status());

    std::printf("day %d: |V|=%lld |E|=%zu phi=%.3f rho=%.3f | %d "
                "iterations, %.1f%% of existing vertices moved\n",
                day, static_cast<long long>(session.num_vertices()),
                session.edges().size(), session.last_result().metrics.phi,
                session.last_result().metrics.rho,
                session.last_result().iterations, 100.0 * *moved);
  }
  std::printf("\nadaptation kept locality near the from-scratch level while "
              "moving only a small fraction of vertices each day.\n");
  return 0;
}
