// partition_tool: a complete command-line front end to the library — the
// utility an operator would script against.
//
//   # Partition an edge-list file (sparse ids fine; they are compacted):
//   ./partition_tool partition --input=edges.txt --k=32 --out=parts.txt
//
//   # The graph changed: adapt the existing partitioning.
//   ./partition_tool adapt --input=new_edges.txt --previous=parts.txt
//       --k=32 --out=parts2.txt
//
//   # The cluster changed: rescale to a new partition count.
//   ./partition_tool rescale --input=edges.txt --previous=parts.txt
//       --k=32 --new-k=40 --out=parts3.txt
//
//   # Score any partition file:
//   ./partition_tool metrics --input=edges.txt --parts=parts.txt --k=32
//
// Common flags: --c (capacity slack), --seed, --workers,
// --balance=edges|vertices.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/graph_io.h"
#include "graph/remap.h"
#include "graph/stats.h"
#include "spinner/metrics.h"
#include "spinner/partitioner.h"

using namespace spinner;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: partition_tool <partition|adapt|rescale|metrics> "
               "--input=<edges.txt> [flags]\n"
               "see the header of examples/partition_tool.cpp for the "
               "full flag list\n");
  return 2;
}

struct LoadedGraph {
  CsrGraph converted;
  int64_t num_vertices = 0;
};

Result<LoadedGraph> Load(const std::string& path) {
  SPINNER_ASSIGN_OR_RETURN(EdgeList edges, graph_io::ReadEdgeList(path));
  if (edges.empty()) return Status::InvalidArgument("no edges in " + path);
  CompactVertexIds(&edges);  // tolerate sparse ids
  const int64_t n = MaxVertexId(edges) + 1;
  LoadedGraph out;
  SPINNER_ASSIGN_OR_RETURN(out.converted,
                           ConvertToWeightedUndirected(n, edges));
  out.num_vertices = n;
  return out;
}

SpinnerConfig ConfigFrom(const CommandLine& cli) {
  SpinnerConfig config;
  config.num_partitions = static_cast<int>(cli.GetInt("k", 32));
  config.additional_capacity = cli.GetDouble("c", 1.05);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  config.num_workers = static_cast<int>(cli.GetInt("workers", 0));
  if (cli.GetString("balance", "edges") == "vertices") {
    config.balance_mode = BalanceMode::kVertices;
  }
  return config;
}

void Report(const PartitionResult& result) {
  std::printf("k=%d iterations=%d converged=%s phi=%.4f rho=%.4f\n",
              result.num_partitions, result.iterations,
              result.converged ? "yes" : "no", result.metrics.phi,
              result.metrics.rho);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  CommandLine cli;
  if (!cli.Parse(argc, argv).ok()) return Usage();
  const std::string input = cli.GetString("input", "");
  if (input.empty()) return Usage();

  auto loaded = Load(input);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("graph: %s\n",
              ToString(ComputeGraphStats(loaded->converted)).c_str());
  const SpinnerConfig config = ConfigFrom(cli);
  SpinnerPartitioner partitioner(config);

  Result<PartitionResult> result = Status::Unimplemented("no command");
  if (command == "partition") {
    result = partitioner.Partition(loaded->converted);
  } else if (command == "adapt" || command == "rescale") {
    auto previous = graph_io::ReadPartitioning(
        cli.GetString("previous", ""), loaded->num_vertices);
    if (!previous.ok()) return Fail(previous.status());
    if (command == "adapt") {
      result = partitioner.Repartition(loaded->converted, *previous);
    } else {
      const int new_k = static_cast<int>(
          cli.GetInt("new-k", config.num_partitions));
      result = partitioner.Rescale(loaded->converted, *previous, new_k);
    }
  } else if (command == "metrics") {
    auto parts = graph_io::ReadPartitioning(cli.GetString("parts", ""),
                                            loaded->num_vertices);
    if (!parts.ok()) return Fail(parts.status());
    auto m = ComputeMetrics(loaded->converted, *parts,
                            config.num_partitions,
                            config.additional_capacity);
    if (!m.ok()) return Fail(m.status());
    std::printf("phi=%.4f rho=%.4f cut=%lld total=%lld\n", m->phi, m->rho,
                static_cast<long long>(m->cut_weight),
                static_cast<long long>(m->total_weight));
    return 0;
  } else {
    return Usage();
  }

  if (!result.ok()) return Fail(result.status());
  Report(*result);
  const std::string out = cli.GetString("out", "");
  if (!out.empty()) {
    Status s = graph_io::WritePartitioning(out, result->assignment);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
