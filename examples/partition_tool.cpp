// partition_tool: a complete command-line front end to the library — the
// utility an operator would script against. Any registered partitioner can
// be selected by name; the adapt/rescale lifecycle commands require the
// matching capability (spinner has all of them).
//
//   # Partition an edge-list file (sparse ids fine; they are compacted):
//   ./partition_tool partition --input=edges.txt --k=32 --out=parts.txt
//
//   # Sweep a baseline instead of Spinner:
//   ./partition_tool partition --input=edges.txt --k=32 --partitioner=fennel
//
//   # The graph changed: adapt the existing partitioning.
//   ./partition_tool adapt --input=new_edges.txt --previous=parts.txt
//       --k=32 --out=parts2.txt
//
//   # The cluster changed: rescale to a new partition count.
//   ./partition_tool rescale --input=edges.txt --previous=parts.txt
//       --k=32 --new-k=40 --out=parts3.txt
//
//   # Score any partition file:
//   ./partition_tool metrics --input=edges.txt --parts=parts.txt --k=32
//
//   # Generate a deterministic synthetic edge list (CI smoke, demos):
//   ./partition_tool generate --out=edges.txt --vertices=5000 --seed=7
//
//   # List the registered partitioners:
//   ./partition_tool list
//
// Common flags: --partitioner (default "spinner"), --c (capacity slack),
// --seed (label-drawing partitioners), --stream-seed (arrival order of the
// streaming baselines; 0 = natural id order), --workers,
// --shards (graph-store shards for the parallel partitioners),
// --threads (OS threads), --processes (fork N ShardWorker processes and
// run cross-process; 0 = in-process — none of the execution-shape flags
// changes results), --wire-max-payload (cross-process frame payload
// ceiling in bytes; larger messages stream across chunk frames),
// --balance=edges|vertices.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/partitioner_registry.h"
#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/remap.h"
#include "graph/stats.h"
#include "spinner/metrics.h"

using namespace spinner;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: partition_tool "
               "<partition|adapt|rescale|metrics|generate|list> "
               "--input=<edges.txt> [flags]\n"
               "see the header of examples/partition_tool.cpp for the "
               "full flag list\n");
  return 2;
}

struct LoadedGraph {
  CsrGraph converted;
  int64_t num_vertices = 0;
};

Result<LoadedGraph> Load(const std::string& path) {
  SPINNER_ASSIGN_OR_RETURN(EdgeList edges, graph_io::ReadEdgeList(path));
  if (edges.empty()) return Status::InvalidArgument("no edges in " + path);
  CompactVertexIds(&edges);  // tolerate sparse ids
  const int64_t n = MaxVertexId(edges) + 1;
  LoadedGraph out;
  SPINNER_ASSIGN_OR_RETURN(out.converted,
                           ConvertToWeightedUndirected(n, edges));
  out.num_vertices = n;
  return out;
}

PartitionerOptions OptionsFrom(const CommandLine& cli) {
  PartitionerOptions options;
  options.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  // Streaming partitioners are seeded by arrival order; 0 (the default)
  // keeps the natural vertex-id order.
  options.stream_seed =
      static_cast<uint64_t>(cli.GetInt("stream-seed", 0));
  options.spinner.num_partitions = static_cast<int>(cli.GetInt("k", 32));
  options.spinner.additional_capacity = cli.GetDouble("c", 1.05);
  options.spinner.num_workers = static_cast<int>(cli.GetInt("workers", 0));
  // Execution shape: shards of the graph store and OS threads driving
  // them. Pure parallelism knobs — the computed partitioning is identical
  // for every choice.
  options.num_shards = static_cast<int>(cli.GetInt("shards", 0));
  options.num_threads = static_cast<int>(cli.GetInt("threads", 0));
  options.num_processes = static_cast<int>(cli.GetInt("processes", 0));
  // Cross-process transport: frame payload ceiling in bytes; larger
  // messages stream across chunk frames (0 = transport default). The
  // wire-stress CI lane forces this tiny to execute every chunk path.
  // Negative values would wrap through the unsigned cast into a silently
  // clamped huge limit; reject them here with a real diagnostic.
  const int64_t wire_max_payload = cli.GetInt("wire-max-payload", 0);
  if (wire_max_payload < 0) {
    std::fprintf(stderr,
                 "error: --wire-max-payload must be >= 0 (got %lld)\n",
                 static_cast<long long>(wire_max_payload));
    std::exit(2);
  }
  options.wire_max_payload = static_cast<uint64_t>(wire_max_payload);
  if (cli.GetString("balance", "edges") == "vertices") {
    options.spinner.balance_mode = BalanceMode::kVertices;
    options.balance_on_edges = false;
  }
  return options;
}

int Report(const CsrGraph& g, const std::vector<PartitionId>& labels, int k,
           double c) {
  auto m = ComputeMetrics(g, labels, k, c);
  if (!m.ok()) return Fail(m.status());
  std::printf("k=%d phi=%.4f rho=%.4f cut=%lld total=%lld\n", k, m->phi,
              m->rho, static_cast<long long>(m->cut_weight),
              static_cast<long long>(m->total_weight));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  CommandLine cli;
  if (!cli.Parse(argc, argv).ok()) return Usage();

  if (command == "generate") {
    // Deterministic Watts-Strogatz edge list (the paper's scalability
    // substrate) — lets CI scripts smoke-test the tool with no fixture.
    const std::string out = cli.GetString("out", "");
    if (out.empty()) return Usage();
    auto generated = WattsStrogatz(
        cli.GetInt("vertices", 5000),
        static_cast<int>(cli.GetInt("degree", 6)) / 2, 0.3,
        static_cast<uint64_t>(cli.GetInt("seed", 42)));
    if (!generated.ok()) return Fail(generated.status());
    Status s = graph_io::WriteEdgeList(out, generated->edges);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %lld vertices / %zu edges to %s\n",
                static_cast<long long>(generated->num_vertices),
                generated->edges.size(), out.c_str());
    return 0;
  }

  if (command == "list") {
    for (const std::string& name : PartitionerRegistry::Names()) {
      auto p = PartitionerRegistry::Create(name);
      std::printf("%-12s%s%s\n", name.c_str(),
                  p.ok() && (*p)->SupportsRepartition() ? " [adapt]" : "",
                  p.ok() && (*p)->SupportsRescale() ? " [rescale]" : "");
    }
    return 0;
  }

  const std::string input = cli.GetString("input", "");
  if (input.empty()) return Usage();

  auto loaded = Load(input);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("graph: %s\n",
              ToString(ComputeGraphStats(loaded->converted)).c_str());

  const PartitionerOptions options = OptionsFrom(cli);
  const int k = options.spinner.num_partitions;
  const double c = options.spinner.additional_capacity;
  const std::string partitioner_name =
      cli.GetString("partitioner", "spinner");
  auto partitioner = PartitionerRegistry::Create(partitioner_name, options);
  if (!partitioner.ok()) return Fail(partitioner.status());

  Result<std::vector<PartitionId>> labels =
      Status::Unimplemented("no command");
  int result_k = k;  // rescale reports against the new partition count
  if (command == "partition") {
    labels = (*partitioner)->Partition(loaded->converted, k);
  } else if (command == "adapt" || command == "rescale") {
    auto previous = graph_io::ReadPartitioning(
        cli.GetString("previous", ""), loaded->num_vertices);
    if (!previous.ok()) return Fail(previous.status());
    if (command == "adapt") {
      if (!(*partitioner)->SupportsRepartition()) {
        return Fail(Status::Unimplemented(
            partitioner_name + " does not support adapt"));
      }
      labels = (*partitioner)->Repartition(loaded->converted, k, *previous);
    } else {
      if (!(*partitioner)->SupportsRescale()) {
        return Fail(Status::Unimplemented(
            partitioner_name + " does not support rescale"));
      }
      result_k = static_cast<int>(cli.GetInt("new-k", k));
      labels = (*partitioner)->Rescale(loaded->converted, *previous, k,
                                       result_k);
    }
  } else if (command == "metrics") {
    auto parts = graph_io::ReadPartitioning(cli.GetString("parts", ""),
                                            loaded->num_vertices);
    if (!parts.ok()) return Fail(parts.status());
    return Report(loaded->converted, *parts, k, c);
  } else {
    return Usage();
  }

  if (!labels.ok()) return Fail(labels.status());
  const int code = Report(loaded->converted, *labels, result_k, c);
  if (code != 0) return code;
  const std::string out = cli.GetString("out", "");
  if (!out.empty()) {
    Status s = graph_io::WritePartitioning(out, *labels);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
