// partition_tool: a complete command-line front end to the library — the
// utility an operator would script against. Any registered partitioner can
// be selected by name; the adapt/rescale lifecycle commands require the
// matching capability (spinner has all of them).
//
//   # Partition an edge-list file (sparse ids fine; they are compacted):
//   ./partition_tool partition --input=edges.txt --k=32 --out=parts.txt
//
//   # Sweep a baseline instead of Spinner:
//   ./partition_tool partition --input=edges.txt --k=32 --partitioner=fennel
//
//   # The graph changed: adapt the existing partitioning.
//   ./partition_tool adapt --input=new_edges.txt --previous=parts.txt
//       --k=32 --out=parts2.txt
//
//   # The cluster changed: rescale to a new partition count.
//   ./partition_tool rescale --input=edges.txt --previous=parts.txt
//       --k=32 --new-k=40 --out=parts3.txt
//
//   # Score any partition file:
//   ./partition_tool metrics --input=edges.txt --parts=parts.txt --k=32
//
//   # Generate a deterministic synthetic edge list (CI smoke, demos):
//   ./partition_tool generate --out=edges.txt --vertices=5000 --seed=7
//
//   # Maintain a partitioning over a live edge stream read from stdin
//   # (one event per line: "add U V" | "remove U V" | "vertices N"),
//   # re-partitioning incrementally every --watermark events; on EOF the
//   # stream is drained and the final partitioning written:
//   ./partition_tool serve --input=edges.txt --k=32 --watermark=256
//       --out=parts.txt [--checkpoint=state.spns]
//
//   # List the registered partitioners:
//   ./partition_tool list
//
// Common flags: --partitioner (default "spinner"), --c (capacity slack),
// --seed (label-drawing partitioners), --stream-seed (arrival order of the
// streaming baselines; 0 = natural id order), --workers,
// --shards (graph-store shards for the parallel partitioners),
// --threads (OS threads), --processes (fork N ShardWorker processes and
// run cross-process; 0 = in-process — none of the execution-shape flags
// changes results), --wire-max-payload (cross-process frame payload
// ceiling in bytes; larger messages stream across chunk frames),
// --balance=edges|vertices.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "baselines/partitioner_registry.h"
#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/remap.h"
#include "graph/stats.h"
#include "spinner/metrics.h"
#include "spinner/session.h"
#include "stream/ingestion_service.h"

using namespace spinner;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: partition_tool "
               "<partition|adapt|rescale|metrics|serve|generate|list> "
               "--input=<edges.txt> [flags]\n"
               "see the header of examples/partition_tool.cpp for the "
               "full flag list\n");
  return 2;
}

struct LoadedGraph {
  CsrGraph converted;
  int64_t num_vertices = 0;
};

Result<LoadedGraph> Load(const std::string& path) {
  SPINNER_ASSIGN_OR_RETURN(EdgeList edges, graph_io::ReadEdgeList(path));
  if (edges.empty()) return Status::InvalidArgument("no edges in " + path);
  CompactVertexIds(&edges);  // tolerate sparse ids
  const int64_t n = MaxVertexId(edges) + 1;
  LoadedGraph out;
  SPINNER_ASSIGN_OR_RETURN(out.converted,
                           ConvertToWeightedUndirected(n, edges));
  out.num_vertices = n;
  return out;
}

PartitionerOptions OptionsFrom(const CommandLine& cli) {
  PartitionerOptions options;
  options.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  // Streaming partitioners are seeded by arrival order; 0 (the default)
  // keeps the natural vertex-id order.
  options.stream_seed =
      static_cast<uint64_t>(cli.GetInt("stream-seed", 0));
  options.spinner.num_partitions = static_cast<int>(cli.GetInt("k", 32));
  options.spinner.additional_capacity = cli.GetDouble("c", 1.05);
  options.spinner.num_workers = static_cast<int>(cli.GetInt("workers", 0));
  // Execution shape: shards of the graph store and OS threads driving
  // them. Pure parallelism knobs — the computed partitioning is identical
  // for every choice.
  options.num_shards = static_cast<int>(cli.GetInt("shards", 0));
  options.num_threads = static_cast<int>(cli.GetInt("threads", 0));
  options.num_processes = static_cast<int>(cli.GetInt("processes", 0));
  // Cross-process transport: frame payload ceiling in bytes; larger
  // messages stream across chunk frames (0 = transport default). The
  // wire-stress CI lane forces this tiny to execute every chunk path.
  // Negative values would wrap through the unsigned cast into a silently
  // clamped huge limit; reject them here with a real diagnostic.
  const int64_t wire_max_payload = cli.GetInt("wire-max-payload", 0);
  if (wire_max_payload < 0) {
    std::fprintf(stderr,
                 "error: --wire-max-payload must be >= 0 (got %lld)\n",
                 static_cast<long long>(wire_max_payload));
    std::exit(2);
  }
  options.wire_max_payload = static_cast<uint64_t>(wire_max_payload);
  if (cli.GetString("balance", "edges") == "vertices") {
    options.spinner.balance_mode = BalanceMode::kVertices;
    options.balance_on_edges = false;
  }
  return options;
}

int Report(const CsrGraph& g, const std::vector<PartitionId>& labels, int k,
           double c) {
  auto m = ComputeMetrics(g, labels, k, c);
  if (!m.ok()) return Fail(m.status());
  std::printf("k=%d phi=%.4f rho=%.4f cut=%lld total=%lld\n", k, m->phi,
              m->rho, static_cast<long long>(m->cut_weight),
              static_cast<long long>(m->total_weight));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  CommandLine cli;
  if (!cli.Parse(argc, argv).ok()) return Usage();

  if (command == "generate") {
    // Deterministic Watts-Strogatz edge list (the paper's scalability
    // substrate) — lets CI scripts smoke-test the tool with no fixture.
    const std::string out = cli.GetString("out", "");
    if (out.empty()) return Usage();
    auto generated = WattsStrogatz(
        cli.GetInt("vertices", 5000),
        static_cast<int>(cli.GetInt("degree", 6)) / 2, 0.3,
        static_cast<uint64_t>(cli.GetInt("seed", 42)));
    if (!generated.ok()) return Fail(generated.status());
    Status s = graph_io::WriteEdgeList(out, generated->edges);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %lld vertices / %zu edges to %s\n",
                static_cast<long long>(generated->num_vertices),
                generated->edges.size(), out.c_str());
    return 0;
  }

  if (command == "list") {
    for (const std::string& name : PartitionerRegistry::Names()) {
      auto p = PartitionerRegistry::Create(name);
      std::printf("%-12s%s%s\n", name.c_str(),
                  p.ok() && (*p)->SupportsRepartition() ? " [adapt]" : "",
                  p.ok() && (*p)->SupportsRescale() ? " [rescale]" : "");
    }
    return 0;
  }

  if (command == "serve") {
    // Long-lived mode: partition --input once, then keep the partitioning
    // maintained against an edge stream read from stdin, one event per
    // line ("add U V" | "remove U V" | "vertices N"; '#' comments). Ids
    // are used as-is — dense ids as produced by `generate` are expected.
    // EOF drains the stream, reports, and writes --out.
    const std::string input = cli.GetString("input", "");
    if (input.empty()) return Usage();
    auto edges = graph_io::ReadEdgeList(input);
    if (!edges.ok()) return Fail(edges.status());
    const int64_t n = MaxVertexId(*edges) + 1;
    const PartitionerOptions options = OptionsFrom(cli);

    PartitioningSession session(
        options.spinner, SessionOptions{.num_shards = options.num_shards,
                                        .num_threads = options.num_threads});
    Status opened = session.Open(n, std::move(*edges), /*directed=*/true);
    if (!opened.ok()) return Fail(opened);
    std::printf("serving: |V|=%lld |E|=%zu k=%d phi=%.4f rho=%.4f\n",
                static_cast<long long>(session.num_vertices()),
                session.edges().size(), session.num_partitions(),
                session.last_result().metrics.phi,
                session.last_result().metrics.rho);

    stream::IngestionOptions ingest;
    ingest.policy = std::make_unique<stream::EventCountPolicy>(
        cli.GetInt("watermark", 256));
    ingest.checkpoint_base_path = cli.GetString("checkpoint", "");
    ingest.on_apply = [](const stream::IngestStats& stats) {
      std::printf("window %lld: %lld events in (%lld coalesced away) "
                  "phi=%.4f rho=%.4f apply=%.1fms staleness=%.1fms\n",
                  static_cast<long long>(stats.windows_applied),
                  static_cast<long long>(stats.events_ingested),
                  static_cast<long long>(stats.events_coalesced),
                  stats.last_phi, stats.last_rho,
                  static_cast<double>(stats.last_apply_micros) / 1000.0,
                  static_cast<double>(stats.last_staleness_micros) / 1000.0);
      std::fflush(stdout);
      return true;
    };
    stream::IngestionService service(&session, std::move(ingest));
    Status started = service.Start();
    if (!started.ok()) return Fail(started);

    std::string line;
    int64_t line_number = 0;
    while (std::getline(std::cin, line)) {
      ++line_number;
      std::istringstream fields(line);
      std::string op;
      if (!(fields >> op) || op[0] == '#') continue;
      Status submitted = Status::OK();
      long long u = 0;
      long long v = 0;
      if (op == "add" && fields >> u >> v) {
        submitted =
            service.Submit(stream::EdgeEvent::AddEdge(u, v));
      } else if (op == "remove" && fields >> u >> v) {
        submitted =
            service.Submit(stream::EdgeEvent::RemoveEdge(u, v));
      } else if (op == "vertices" && fields >> u) {
        submitted = service.Submit(stream::EdgeEvent::AddVertices(u));
      } else {
        std::fprintf(stderr,
                     "stdin:%lld: unrecognized event \"%s\" (want add U V "
                     "| remove U V | vertices N)\n",
                     static_cast<long long>(line_number), line.c_str());
        continue;
      }
      if (!submitted.ok()) break;  // the service died: Stop() has the why
    }

    Status stopped = service.Stop();  // drain + apply the final window
    if (!stopped.ok()) return Fail(stopped);
    const stream::IngestStats stats = service.stats();
    std::printf("stream done: %lld events, %lld windows, %lld coalesced "
                "away, queue high-water %lld\n",
                static_cast<long long>(stats.events_ingested),
                static_cast<long long>(stats.windows_applied),
                static_cast<long long>(stats.events_coalesced),
                static_cast<long long>(stats.queue_high_water));
    std::printf("final: |V|=%lld |E|=%zu phi=%.4f rho=%.4f\n",
                static_cast<long long>(session.num_vertices()),
                session.edges().size(), session.last_result().metrics.phi,
                session.last_result().metrics.rho);
    const std::string out = cli.GetString("out", "");
    if (!out.empty()) {
      Status s = graph_io::WritePartitioning(out, session.assignment());
      if (!s.ok()) return Fail(s);
      std::printf("wrote %s\n", out.c_str());
    }
    return 0;
  }

  const std::string input = cli.GetString("input", "");
  if (input.empty()) return Usage();

  auto loaded = Load(input);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("graph: %s\n",
              ToString(ComputeGraphStats(loaded->converted)).c_str());

  const PartitionerOptions options = OptionsFrom(cli);
  const int k = options.spinner.num_partitions;
  const double c = options.spinner.additional_capacity;
  const std::string partitioner_name =
      cli.GetString("partitioner", "spinner");
  auto partitioner = PartitionerRegistry::Create(partitioner_name, options);
  if (!partitioner.ok()) return Fail(partitioner.status());

  Result<std::vector<PartitionId>> labels =
      Status::Unimplemented("no command");
  int result_k = k;  // rescale reports against the new partition count
  if (command == "partition") {
    labels = (*partitioner)->Partition(loaded->converted, k);
  } else if (command == "adapt" || command == "rescale") {
    auto previous = graph_io::ReadPartitioning(
        cli.GetString("previous", ""), loaded->num_vertices);
    if (!previous.ok()) return Fail(previous.status());
    if (command == "adapt") {
      if (!(*partitioner)->SupportsRepartition()) {
        return Fail(Status::Unimplemented(
            partitioner_name + " does not support adapt"));
      }
      labels = (*partitioner)->Repartition(loaded->converted, k, *previous);
    } else {
      if (!(*partitioner)->SupportsRescale()) {
        return Fail(Status::Unimplemented(
            partitioner_name + " does not support rescale"));
      }
      result_k = static_cast<int>(cli.GetInt("new-k", k));
      labels = (*partitioner)->Rescale(loaded->converted, *previous, k,
                                       result_k);
    }
  } else if (command == "metrics") {
    auto parts = graph_io::ReadPartitioning(cli.GetString("parts", ""),
                                            loaded->num_vertices);
    if (!parts.ok()) return Fail(parts.status());
    return Report(loaded->converted, *parts, k, c);
  } else {
    return Usage();
  }

  if (!labels.ok()) return Fail(labels.status());
  const int code = Report(loaded->converted, *labels, result_k, c);
  if (code != 0) return code;
  const std::string out = cli.GetString("out", "");
  if (!out.empty()) {
    Status s = graph_io::WritePartitioning(out, *labels);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
