// partition_tool: a complete command-line front end to the library — the
// utility an operator would script against. One uniform subcommand
// surface with shared flag parsing and per-subcommand --help:
//
//   partition_tool <subcommand> [flags]
//   partition_tool <subcommand> --help
//
//   partition   one-shot k-way partitioning of an edge-list file
//   adapt       incremental adaptation from a previous partitioning
//   rescale     elastic adaptation to a new partition count
//   metrics     score an existing partition file
//   serve       maintain a partitioning against a live edge stream
//   generate    deterministic synthetic edge list (CI smoke, demos)
//   worker      dial-in TCP shard worker (pairs with --transport=tcp)
//   list        registered partitioners and their capabilities
//
//   # Partition an edge-list file (sparse ids fine; they are compacted):
//   ./partition_tool partition --input=edges.txt --k=32 --out=parts.txt
//
//   # The same run distributed: 3 dial-in workers over TCP. Workers
//   # retry the dial, so they may be started before the coordinator:
//   ./partition_tool worker --connect=127.0.0.1:7077 --store=/tmp/w0 &
//   ./partition_tool worker --connect=127.0.0.1:7077 --store=/tmp/w1 &
//   ./partition_tool worker --connect=127.0.0.1:7077 --store=/tmp/w2 &
//   ./partition_tool partition --input=edges.txt --k=32
//       --transport=tcp --listen=127.0.0.1:7077 --workers=3
//
// Execution-shape flags (shared by partition/adapt/rescale/serve; none of
// them changes results): --shards, --threads, --transport=
// inprocess|multiprocess|tcp, --workers (worker processes for the
// off-thread transports), --processes (legacy spelling of
// "--transport=multiprocess --workers=N"), --listen (tcp coordinator
// bind address), --store-dir (forked workers' persistent shard store),
// --wire-max-payload (frame payload ceiling in bytes; larger messages
// stream across chunk frames).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "baselines/partitioner_registry.h"
#include "common/cli.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "elastic/policy_spec.h"
#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/remap.h"
#include "graph/stats.h"
#include "spinner/metrics.h"
#include "spinner/session.h"
#include "stream/ingestion_service.h"

using namespace spinner;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct Subcommand {
  const char* name;
  const char* summary;
  const char* help;  // flag list printed by `<subcommand> --help`
};

constexpr const char* kCommonFlags =
    "  --partitioner=NAME   partitioner to run (default spinner; see "
    "`list`)\n"
    "  --k=N                partition count (default 32)\n"
    "  --c=F                capacity slack (default 1.05)\n"
    "  --seed=N             seed for the label-drawing partitioners\n"
    "  --stream-seed=N      arrival order of the streaming baselines\n"
    "  --balance=edges|vertices\n"
    "  --shards=N --threads=N\n"
    "                       graph-store shards / OS threads (results never "
    "change)\n"
    "  --transport=inprocess|multiprocess|tcp\n"
    "                       where the shard workers run (default "
    "inprocess)\n"
    "  --workers=N          worker processes (required for tcp)\n"
    "  --processes=N        legacy: --transport=multiprocess --workers=N\n"
    "  --listen=HOST:PORT   tcp: coordinator bind address (default "
    "127.0.0.1:0)\n"
    "  --store-dir=DIR      forked workers: persistent shard store root\n"
    "  --wire-max-payload=N frame payload ceiling in bytes\n"
    "  --rpc-timeout-ms=N   per-recv worker liveness deadline (default "
    "120000)\n"
    "  --heartbeat-ms=N     liveness poll period / recovery backoff base "
    "(default 1000)\n"
    "  --recover=N          superstep retries after a worker failure "
    "(default 0 = off)\n";

const Subcommand kSubcommands[] = {
    {"partition", "one-shot k-way partitioning of an edge-list file",
     "usage: partition_tool partition --input=EDGES [flags]\n"
     "  --input=FILE         edge-list file (required)\n"
     "  --out=FILE           write the partitioning here\n"},
    {"adapt", "incremental adaptation from a previous partitioning",
     "usage: partition_tool adapt --input=EDGES --previous=PARTS [flags]\n"
     "  --input=FILE         edge-list file (required)\n"
     "  --previous=FILE      previous partitioning (required)\n"
     "  --out=FILE           write the adapted partitioning here\n"
     "  --policy=SPEC        after adapting, let an autoscaling policy\n"
     "                       decide whether to rescale too;\n"
     "                       spec: name[:key=value,...], see --policy=help\n"
     "  --capacity=N         machines available to the policy (0 = "
     "unbounded)\n"},
    {"rescale", "elastic adaptation to a new partition count",
     "usage: partition_tool rescale --input=EDGES --previous=PARTS "
     "--new-k=N [flags]\n"
     "  --input=FILE         edge-list file (required)\n"
     "  --previous=FILE      previous partitioning (required)\n"
     "  --new-k=N            target partition count\n"
     "  --policy=SPEC        let an autoscaling policy pick the target k\n"
     "                       instead of --new-k;\n"
     "                       spec: name[:key=value,...], see --policy=help\n"
     "  --capacity=N         machines available to the policy (0 = "
     "unbounded)\n"
     "  --out=FILE           write the rescaled partitioning here\n"},
    {"metrics", "score an existing partition file",
     "usage: partition_tool metrics --input=EDGES --parts=PARTS --k=N\n"
     "  --input=FILE         edge-list file (required)\n"
     "  --parts=FILE         partitioning to score (required)\n"},
    {"serve", "maintain a partitioning against a live edge stream",
     "usage: partition_tool serve --input=EDGES [flags] < events\n"
     "  --input=FILE         initial edge-list file (required)\n"
     "  --watermark=N        re-partition every N events (default 256)\n"
     "  --checkpoint=FILE    incremental checkpoint base path\n"
     "  --out=FILE           write the final partitioning on EOF\n"
     "  events on stdin: add U V | remove U V | vertices N\n"},
    {"generate", "deterministic synthetic edge list (CI smoke, demos)",
     "usage: partition_tool generate --out=EDGES [flags]\n"
     "  --out=FILE           output edge-list file (required)\n"
     "  --vertices=N         vertex count (default 5000)\n"
     "  --degree=N           mean degree (default 6)\n"
     "  --seed=N             generator seed (default 42)\n"},
    {"worker", "dial-in TCP shard worker (pairs with --transport=tcp)",
     "usage: partition_tool worker --connect=HOST:PORT [flags]\n"
     "  --connect=HOST:PORT  coordinator address (required)\n"
     "  --store=DIR          persistent shard store root (zero-download\n"
     "                       resume across re-dials; empty = in-memory)\n"
     "  --capacity=N         advertised shard-hosting capacity (default "
     "1)\n"
     "  --dial-timeout-ms=N  how long to retry the dial (default 30000)\n"
     "  --wire-max-payload=N must match the coordinator's setting\n"
     "  --fail-after-scores=N\n"
     "                       chaos hook: _exit(3) in the Nth score "
     "superstep\n"
     "  serves runs until the coordinator closes the connection; exits 0\n"},
    {"list", "registered partitioners and their capabilities",
     "usage: partition_tool list\n"},
};

int Usage() {
  std::fprintf(stderr, "usage: partition_tool <subcommand> [flags]\n\n");
  for (const Subcommand& sub : kSubcommands) {
    std::fprintf(stderr, "  %-10s %s\n", sub.name, sub.summary);
  }
  std::fprintf(stderr,
               "\n`partition_tool <subcommand> --help` lists the flags of "
               "one subcommand.\n");
  return 2;
}

int Help(const Subcommand& sub) {
  std::fprintf(stderr, "%s", sub.help);
  if (std::string(sub.name) == "partition" ||
      std::string(sub.name) == "adapt" ||
      std::string(sub.name) == "rescale" ||
      std::string(sub.name) == "serve") {
    std::fprintf(stderr, "common flags:\n%s", kCommonFlags);
  }
  return 0;
}

struct LoadedGraph {
  CsrGraph converted;
  int64_t num_vertices = 0;
};

Result<LoadedGraph> Load(const std::string& path) {
  SPINNER_ASSIGN_OR_RETURN(EdgeList edges, graph_io::ReadEdgeList(path));
  if (edges.empty()) return Status::InvalidArgument("no edges in " + path);
  CompactVertexIds(&edges);  // tolerate sparse ids
  const int64_t n = MaxVertexId(edges) + 1;
  LoadedGraph out;
  SPINNER_ASSIGN_OR_RETURN(out.converted,
                           ConvertToWeightedUndirected(n, edges));
  out.num_vertices = n;
  return out;
}

/// Shared flag parsing for every subcommand that runs a partitioner.
PartitionerOptions OptionsFrom(const CommandLine& cli) {
  PartitionerOptions options;
  options.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  // Streaming partitioners are seeded by arrival order; 0 (the default)
  // keeps the natural vertex-id order.
  options.stream_seed =
      static_cast<uint64_t>(cli.GetInt("stream-seed", 0));
  options.spinner.num_partitions = static_cast<int>(cli.GetInt("k", 32));
  options.spinner.additional_capacity = cli.GetDouble("c", 1.05);
  options.spinner.num_workers = static_cast<int>(cli.GetInt("workers", 0));
  // Execution shape: shards of the graph store and OS threads driving
  // them. Pure parallelism knobs — the computed partitioning is identical
  // for every choice.
  options.execution.num_shards =
      static_cast<int>(cli.GetInt("shards", 0));
  options.execution.num_threads =
      static_cast<int>(cli.GetInt("threads", 0));
  options.num_processes = static_cast<int>(cli.GetInt("processes", 0));
  const std::string transport = cli.GetString("transport", "inprocess");
  if (transport == "multiprocess") {
    options.execution.mode = ExecutionMode::kMultiProcess;
    options.execution.num_workers =
        static_cast<int>(cli.GetInt("workers", 0));
  } else if (transport == "tcp") {
    options.execution.mode = ExecutionMode::kTcp;
    options.execution.num_workers =
        static_cast<int>(cli.GetInt("workers", 0));
    options.execution.listen_address =
        cli.GetString("listen", "127.0.0.1:0");
    options.execution.handshake_timeout_ms =
        cli.GetInt("handshake-timeout-ms", 30'000);
  } else if (transport != "inprocess") {
    std::fprintf(stderr,
                 "error: --transport must be inprocess|multiprocess|tcp "
                 "(got %s)\n",
                 transport.c_str());
    std::exit(2);
  }
  options.execution.worker_store_dir = cli.GetString("store-dir", "");
  // Failure detection/recovery knobs (cross-process transports only; the
  // in-process path ignores them). Defaults match ExecutionOptions.
  options.execution.rpc_timeout_ms = cli.GetInt("rpc-timeout-ms", 120'000);
  options.execution.heartbeat_period_ms = cli.GetInt("heartbeat-ms", 1'000);
  options.execution.max_recovery_attempts =
      static_cast<int>(cli.GetInt("recover", 0));
  // Cross-process transport: frame payload ceiling in bytes; larger
  // messages stream across chunk frames (0 = transport default). The
  // wire-stress CI lane forces this tiny to execute every chunk path.
  // Negative values would wrap through the unsigned cast into a silently
  // clamped huge limit; reject them here with a real diagnostic.
  const int64_t wire_max_payload = cli.GetInt("wire-max-payload", 0);
  if (wire_max_payload < 0) {
    std::fprintf(stderr,
                 "error: --wire-max-payload must be >= 0 (got %lld)\n",
                 static_cast<long long>(wire_max_payload));
    std::exit(2);
  }
  options.execution.wire_max_payload =
      static_cast<uint64_t>(wire_max_payload);
  if (cli.GetString("balance", "edges") == "vertices") {
    options.spinner.balance_mode = BalanceMode::kVertices;
    options.balance_on_edges = false;
  }
  return options;
}

int Report(const CsrGraph& g, const std::vector<PartitionId>& labels, int k,
           double c) {
  auto m = ComputeMetrics(g, labels, k, c);
  if (!m.ok()) return Fail(m.status());
  std::printf("k=%d phi=%.4f rho=%.4f cut=%lld total=%lld\n", k, m->phi,
              m->rho, static_cast<long long>(m->cut_weight),
              static_cast<long long>(m->total_weight));
  return 0;
}

/// One-shot policy evaluation for `adapt`/`rescale` --policy=SPEC: builds
/// the same signals the ElasticController publishes from a metrics pass
/// over `labels`, asks the policy once, prints the verdict, and returns
/// the k the partitioning should run at (the current k on hold). The spec
/// grammar is shared with the simulator's policy lab via
/// elastic::MakePolicy. Note this is a single evaluation: a
/// hysteresis=N (N>1) wrapper can never fire here.
Result<int> PolicyTargetK(const std::string& spec, const CsrGraph& g,
                          const std::vector<PartitionId>& labels, int k,
                          double c, int available_capacity) {
  SPINNER_ASSIGN_OR_RETURN(std::unique_ptr<elastic::ScalingPolicy> policy,
                           elastic::MakePolicy(spec));
  SPINNER_ASSIGN_OR_RETURN(PartitionMetrics m,
                           ComputeMetrics(g, labels, k, c));
  elastic::ScalingSignals signals;
  signals.current_k = k;
  signals.phi = m.phi;
  signals.rho = m.rho;
  signals.score = m.score;
  for (int64_t load : m.loads) {
    if (load > signals.max_load) signals.max_load = load;
  }
  signals.total_weight = m.total_weight;
  signals.available_capacity = available_capacity;
  const elastic::ScalingDecision decision = policy->Decide(signals);
  if (decision.acts()) {
    std::printf("policy %s: %s k=%d -> %d  (%s)\n", policy->name().c_str(),
                elastic::ToString(decision.action), k, decision.target_k,
                decision.reason.c_str());
    return decision.target_k;
  }
  std::printf("policy %s: hold at k=%d  (%s)\n", policy->name().c_str(), k,
              decision.reason.c_str());
  return k;
}

int RunWorker(const CommandLine& cli) {
  const std::string connect = cli.GetString("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "error: worker requires --connect=HOST:PORT\n");
    return 2;
  }
  const int64_t wire_max_payload = cli.GetInt("wire-max-payload", 0);
  if (wire_max_payload < 0) {
    std::fprintf(stderr, "error: --wire-max-payload must be >= 0\n");
    return 2;
  }
  dist::WorkerLoopOptions loop;
  loop.store_dir = cli.GetString("store", "");
  loop.capacity = cli.GetInt("capacity", 1);
  loop.dial_timeout_ms = cli.GetInt("dial-timeout-ms", 30'000);
  loop.fail_after_score_steps =
      static_cast<int32_t>(cli.GetInt("fail-after-scores", -1));
  if (loop.capacity < 1) {
    std::fprintf(stderr, "error: --capacity must be >= 1\n");
    return 2;
  }
  return dist::RunTcpWorker(
      connect,
      dist::TransportOptions::Resolve(
          static_cast<uint64_t>(wire_max_payload)),
      loop);
}

int RunServe(const CommandLine& cli) {
  // Long-lived mode: partition --input once, then keep the partitioning
  // maintained against an edge stream read from stdin, one event per
  // line ("add U V" | "remove U V" | "vertices N"; '#' comments). Ids
  // are used as-is — dense ids as produced by `generate` are expected.
  // EOF drains the stream, reports, and writes --out.
  const std::string input = cli.GetString("input", "");
  if (input.empty()) return Usage();
  auto edges = graph_io::ReadEdgeList(input);
  if (!edges.ok()) return Fail(edges.status());
  const int64_t n = MaxVertexId(*edges) + 1;
  const PartitionerOptions options = OptionsFrom(cli);

  SessionOptions session_options;
  session_options.execution = options.execution;
  PartitioningSession session(options.spinner, session_options);
  Status opened = session.Open(n, std::move(*edges), /*directed=*/true);
  if (!opened.ok()) return Fail(opened);
  std::printf("serving: |V|=%lld |E|=%zu k=%d phi=%.4f rho=%.4f\n",
              static_cast<long long>(session.num_vertices()),
              session.edges().size(), session.num_partitions(),
              session.last_result().metrics.phi,
              session.last_result().metrics.rho);

  stream::IngestionOptions ingest;
  ingest.policy = std::make_unique<stream::EventCountPolicy>(
      cli.GetInt("watermark", 256));
  ingest.checkpoint_base_path = cli.GetString("checkpoint", "");
  ingest.on_apply = [](const stream::IngestStats& stats) {
    std::printf("window %lld: %lld events in (%lld coalesced away) "
                "phi=%.4f rho=%.4f apply=%.1fms staleness=%.1fms\n",
                static_cast<long long>(stats.windows_applied),
                static_cast<long long>(stats.events_ingested),
                static_cast<long long>(stats.events_coalesced),
                stats.last_phi, stats.last_rho,
                static_cast<double>(stats.last_apply_micros) / 1000.0,
                static_cast<double>(stats.last_staleness_micros) / 1000.0);
    std::fflush(stdout);
    return true;
  };
  stream::IngestionService service(&session, std::move(ingest));
  Status started = service.Start();
  if (!started.ok()) return Fail(started);

  std::string line;
  int64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string op;
    if (!(fields >> op) || op[0] == '#') continue;
    Status submitted = Status::OK();
    long long u = 0;
    long long v = 0;
    if (op == "add" && fields >> u >> v) {
      submitted = service.Submit(stream::EdgeEvent::AddEdge(u, v));
    } else if (op == "remove" && fields >> u >> v) {
      submitted = service.Submit(stream::EdgeEvent::RemoveEdge(u, v));
    } else if (op == "vertices" && fields >> u) {
      submitted = service.Submit(stream::EdgeEvent::AddVertices(u));
    } else {
      std::fprintf(stderr,
                   "stdin:%lld: unrecognized event \"%s\" (want add U V "
                   "| remove U V | vertices N)\n",
                   static_cast<long long>(line_number), line.c_str());
      continue;
    }
    if (!submitted.ok()) break;  // the service died: Stop() has the why
  }

  Status stopped = service.Stop();  // drain + apply the final window
  if (!stopped.ok()) return Fail(stopped);
  const stream::IngestStats stats = service.stats();
  std::printf("stream done: %lld events, %lld windows, %lld coalesced "
              "away, queue high-water %lld\n",
              static_cast<long long>(stats.events_ingested),
              static_cast<long long>(stats.windows_applied),
              static_cast<long long>(stats.events_coalesced),
              static_cast<long long>(stats.queue_high_water));
  std::printf("final: |V|=%lld |E|=%zu phi=%.4f rho=%.4f\n",
              static_cast<long long>(session.num_vertices()),
              session.edges().size(), session.last_result().metrics.phi,
              session.last_result().metrics.rho);
  const std::string out = cli.GetString("out", "");
  if (!out.empty()) {
    Status s = graph_io::WritePartitioning(out, session.assignment());
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  CommandLine cli;
  if (!cli.Parse(argc, argv).ok()) return Usage();

  const Subcommand* sub = nullptr;
  for (const Subcommand& candidate : kSubcommands) {
    if (command == candidate.name) sub = &candidate;
  }
  if (sub == nullptr) return Usage();
  if (cli.GetBool("help", false)) return Help(*sub);

  if (command == "generate") {
    // Deterministic Watts-Strogatz edge list (the paper's scalability
    // substrate) — lets CI scripts smoke-test the tool with no fixture.
    const std::string out = cli.GetString("out", "");
    if (out.empty()) { Help(*sub); return 2; }
    auto generated = WattsStrogatz(
        cli.GetInt("vertices", 5000),
        static_cast<int>(cli.GetInt("degree", 6)) / 2, 0.3,
        static_cast<uint64_t>(cli.GetInt("seed", 42)));
    if (!generated.ok()) return Fail(generated.status());
    Status s = graph_io::WriteEdgeList(out, generated->edges);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %lld vertices / %zu edges to %s\n",
                static_cast<long long>(generated->num_vertices),
                generated->edges.size(), out.c_str());
    return 0;
  }

  if (command == "list") {
    for (const std::string& name : PartitionerRegistry::Names()) {
      auto p = PartitionerRegistry::Create(name);
      std::printf("%-12s%s%s\n", name.c_str(),
                  p.ok() && (*p)->SupportsRepartition() ? " [adapt]" : "",
                  p.ok() && (*p)->SupportsRescale() ? " [rescale]" : "");
    }
    return 0;
  }

  if (command == "worker") return RunWorker(cli);
  if (command == "serve") return RunServe(cli);

  const std::string input = cli.GetString("input", "");
  if (input.empty()) { Help(*sub); return 2; }

  auto loaded = Load(input);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("graph: %s\n",
              ToString(ComputeGraphStats(loaded->converted)).c_str());

  const PartitionerOptions options = OptionsFrom(cli);
  const int k = options.spinner.num_partitions;
  const double c = options.spinner.additional_capacity;
  const std::string partitioner_name =
      cli.GetString("partitioner", "spinner");
  auto partitioner = PartitionerRegistry::Create(partitioner_name, options);
  if (!partitioner.ok()) return Fail(partitioner.status());

  Result<std::vector<PartitionId>> labels =
      Status::Unimplemented("no command");
  int result_k = k;  // rescale reports against the new partition count
  if (command == "partition") {
    labels = (*partitioner)->Partition(loaded->converted, k);
  } else if (command == "adapt" || command == "rescale") {
    auto previous = graph_io::ReadPartitioning(
        cli.GetString("previous", ""), loaded->num_vertices);
    if (!previous.ok()) return Fail(previous.status());
    const std::string policy_spec = cli.GetString("policy", "");
    if (policy_spec == "help") {
      std::fprintf(stderr, "%s\n", elastic::PolicySpecHelp().c_str());
      return 0;
    }
    if (command == "adapt") {
      if (!(*partitioner)->SupportsRepartition()) {
        return Fail(Status::Unimplemented(
            partitioner_name + " does not support adapt"));
      }
      labels = (*partitioner)->Repartition(loaded->converted, k, *previous);
      if (labels.ok() && !policy_spec.empty()) {
        // Post-adapt elasticity check: did the drift that adapt absorbed
        // push the cluster past the policy's comfort zone?
        auto target = PolicyTargetK(
            policy_spec, loaded->converted, *labels, k, c,
            static_cast<int>(cli.GetInt("capacity", 0)));
        if (!target.ok()) return Fail(target.status());
        if (*target != k) {
          if (!(*partitioner)->SupportsRescale()) {
            return Fail(Status::Unimplemented(
                partitioner_name + " does not support rescale"));
          }
          result_k = *target;
          labels = (*partitioner)->Rescale(loaded->converted, *labels, k,
                                           result_k);
        }
      }
    } else {
      if (!(*partitioner)->SupportsRescale()) {
        return Fail(Status::Unimplemented(
            partitioner_name + " does not support rescale"));
      }
      if (!policy_spec.empty()) {
        // The policy picks the target from the previous partitioning's
        // signals; --new-k is ignored (one decision, not a mandate).
        if (cli.Has("new-k")) {
          std::fprintf(stderr,
                       "note: --policy decides the target; ignoring "
                       "--new-k\n");
        }
        auto target = PolicyTargetK(
            policy_spec, loaded->converted, *previous, k, c,
            static_cast<int>(cli.GetInt("capacity", 0)));
        if (!target.ok()) return Fail(target.status());
        result_k = *target;
        if (result_k == k) {
          labels = std::move(*previous);  // hold: nothing to migrate
        } else {
          labels = (*partitioner)->Rescale(loaded->converted, *previous, k,
                                           result_k);
        }
      } else {
        result_k = static_cast<int>(cli.GetInt("new-k", k));
        labels = (*partitioner)->Rescale(loaded->converted, *previous, k,
                                         result_k);
      }
    }
  } else if (command == "metrics") {
    auto parts = graph_io::ReadPartitioning(cli.GetString("parts", ""),
                                            loaded->num_vertices);
    if (!parts.ok()) return Fail(parts.status());
    return Report(loaded->converted, *parts, k, c);
  } else {
    return Usage();
  }

  if (!labels.ok()) return Fail(labels.status());
  const int code = Report(loaded->converted, *labels, result_k, c);
  if (code != 0) return code;
  const std::string out = cli.GetString("out", "");
  if (!out.empty()) {
    Status s = graph_io::WritePartitioning(out, *labels);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
