// Quickstart: partition a graph with Spinner in ~20 lines.
//
// The idiom: open a PartitioningSession on a raw edge list. The session
// converts (paper Eq. 3), partitions, and then *owns* the assignment — as
// the graph changes call session.ApplyDelta(), as the cluster resizes call
// session.Rescale(), and session.Snapshot() persists the whole state. For
// a one-shot sweep of any other algorithm ("hash", "ldg", "fennel", ...)
// see PartitionerRegistry::Create in baselines/partitioner_registry.h.
//
//   ./quickstart [--k=8] [--c=1.05] [--seed=42] [--input=edges.txt]
//                [--output=partition.txt]
//
// Without --input, a small-world demo graph is generated. With --input,
// reads a "src dst" edge list (directed; converted per paper Eq. 3).
#include <cstdio>

#include "common/cli.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/stats.h"
#include "spinner/session.h"

using namespace spinner;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));

  // --- 1. Load or generate a graph. ---
  EdgeList edges;
  int64_t num_vertices = 0;
  bool directed = true;
  const std::string input = cli.GetString("input", "");
  if (!input.empty()) {
    auto loaded = graph_io::ReadEdgeList(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(loaded).value();
    num_vertices = MaxVertexId(edges) + 1;
  } else {
    auto demo = WattsStrogatz(5000, 5, 0.25, cli.GetInt("seed", 42));
    SPINNER_CHECK_OK(demo.status());
    edges = demo->edges;
    num_vertices = demo->num_vertices;
    directed = demo->directed;
    std::printf("no --input given; generated a small-world demo graph\n");
  }

  // --- 2. Configure and open a partitioning session. The session
  //        converts to the weighted undirected form (paper Eq. 3) and
  //        computes the initial partitioning. ---
  SpinnerConfig config;
  config.num_partitions = static_cast<int>(cli.GetInt("k", 8));
  config.additional_capacity = cli.GetDouble("c", 1.05);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  PartitioningSession session(config);
  Status opened = session.Open(num_vertices, std::move(edges), directed);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.ToString().c_str());
    return 1;
  }
  std::printf("graph: %s\n",
              ToString(ComputeGraphStats(session.converted())).c_str());

  // --- 3. Inspect the result. ---
  const PartitionResult& result = session.last_result();
  std::printf("partitioned into k=%d in %d iterations (%s)\n",
              session.num_partitions(), result.iterations,
              result.converged ? "converged" : "iteration cap");
  std::printf("locality phi = %.3f (fraction of message traffic kept "
              "local)\n", result.metrics.phi);
  std::printf("balance  rho = %.3f (max load / ideal; target <= c = %.2f)\n",
              result.metrics.rho, config.additional_capacity);
  for (size_t l = 0; l < result.metrics.loads.size(); ++l) {
    std::printf("  partition %zu: load %lld\n", l,
                static_cast<long long>(result.metrics.loads[l]));
  }

  // --- 4. Persist the assignment (the session itself can also be
  //        checkpointed with session.Snapshot(path)). ---
  const std::string output = cli.GetString("output", "partition.txt");
  SPINNER_CHECK_OK(graph_io::WritePartitioning(output, session.assignment()));
  std::printf("assignment written to %s\n", output.c_str());
  return 0;
}
