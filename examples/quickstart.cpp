// Quickstart: partition a graph with Spinner in ~20 lines.
//
//   ./quickstart [--k=8] [--c=1.05] [--seed=42] [--input=edges.txt]
//                [--output=partition.txt]
//
// Without --input, a small-world demo graph is generated. With --input,
// reads a "src dst" edge list (directed; converted per paper Eq. 3).
#include <cstdio>

#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/stats.h"
#include "spinner/partitioner.h"

using namespace spinner;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));

  // --- 1. Load or generate a graph. ---
  EdgeList edges;
  int64_t num_vertices = 0;
  const std::string input = cli.GetString("input", "");
  if (!input.empty()) {
    auto loaded = graph_io::ReadEdgeList(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(loaded).value();
    num_vertices = MaxVertexId(edges) + 1;
  } else {
    auto demo = WattsStrogatz(5000, 5, 0.25, cli.GetInt("seed", 42));
    SPINNER_CHECK_OK(demo.status());
    edges = demo->edges;
    num_vertices = demo->num_vertices;
    std::printf("no --input given; generated a small-world demo graph\n");
  }

  // --- 2. Convert to the weighted undirected form (paper Eq. 3). ---
  auto converted = ConvertToWeightedUndirected(num_vertices, edges);
  SPINNER_CHECK_OK(converted.status());
  std::printf("graph: %s\n", ToString(ComputeGraphStats(*converted)).c_str());

  // --- 3. Configure and run Spinner. ---
  SpinnerConfig config;
  config.num_partitions = static_cast<int>(cli.GetInt("k", 8));
  config.additional_capacity = cli.GetDouble("c", 1.05);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  SpinnerPartitioner partitioner(config);
  auto result = partitioner.Partition(*converted);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // --- 4. Inspect the result. ---
  std::printf("partitioned into k=%d in %d iterations (%s)\n",
              result->num_partitions, result->iterations,
              result->converged ? "converged" : "iteration cap");
  std::printf("locality phi = %.3f (fraction of message traffic kept "
              "local)\n", result->metrics.phi);
  std::printf("balance  rho = %.3f (max load / ideal; target <= c = %.2f)\n",
              result->metrics.rho, config.additional_capacity);
  for (size_t l = 0; l < result->metrics.loads.size(); ++l) {
    std::printf("  partition %zu: load %lld\n", l,
                static_cast<long long>(result->metrics.loads[l]));
  }

  // --- 5. Persist the assignment. ---
  const std::string output = cli.GetString("output", "partition.txt");
  SPINNER_CHECK_OK(graph_io::WritePartitioning(output, result->assignment));
  std::printf("assignment written to %s\n", output.c_str());
  return 0;
}
