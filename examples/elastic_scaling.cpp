// Elastic cloud scaling, closed loop (paper §III.E / §V.E scenario): the
// cluster sees a morning traffic ramp (graph growth), a mid-day capacity
// grant, and an overnight lull — and nobody calls Rescale by hand. A
// ScalingPolicy watches the live load/quality signals and an
// ElasticController executes its verdicts; the whole day is a recorded
// LoadTrace replayed through the real IngestionService, so the run is
// deterministic and the controller's decision log tells the story.
//
//   ./elastic_scaling [--initial-k=8] [--policy='watermark:high=1.0,...']
//                     [--trace=day.trace] [--save-trace=day.trace]
//
// With --policy=none the controller observes but never acts — the
// baseline a policy must beat.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/string_util.h"
#include "elastic/policy_spec.h"
#include "graph/generators.h"
#include "simulator/cluster_simulator.h"
#include "spinner/session.h"

using namespace spinner;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int initial_k = static_cast<int>(cli.GetInt("initial-k", 8));

  auto graph = WattsStrogatz(12000, 8, 0.25, 3);
  SPINNER_CHECK_OK(graph.status());

  // Morning: steady state on `initial_k` machines.
  SpinnerConfig config;
  config.num_partitions = initial_k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(
      session.Open(graph->num_vertices, graph->edges, graph->directed));
  int64_t steady_max_load = 0;
  for (int64_t load : session.last_result().metrics.loads) {
    steady_max_load = std::max(steady_max_load, load);
  }
  std::printf("morning steady state: k=%d phi=%.3f rho=%.3f hottest "
              "machine=%lld arcs\n",
              session.num_partitions(), session.last_result().metrics.phi,
              session.last_result().metrics.rho,
              static_cast<long long>(steady_max_load));

  // The day's workload: growth bursts all morning, a capacity grant (4
  // more machines) at noon. Loadable from a recorded file via --trace.
  sim::LoadTrace trace;
  const std::string trace_path = cli.GetString("trace", "");
  if (!trace_path.empty()) {
    auto loaded = sim::ReadLoadTrace(trace_path);
    SPINNER_CHECK_OK(loaded.status());
    trace = std::move(loaded).value();
  } else {
    sim::SyntheticTraceOptions day;
    day.num_vertices = graph->num_vertices;
    day.num_bursts = 8;
    day.events_per_burst = 900;
    day.vertices_per_burst = 300;
    day.remove_fraction = 0.05;
    day.hotspot_fraction = 0.25;
    day.seed = 11;
    day.initial_capacity = initial_k + 2;
    day.capacity_change_burst = 4;                 // noon
    day.changed_capacity = initial_k + 6;          // the grant
    trace = sim::SyntheticLoadTrace(day);
  }
  const std::string save_path = cli.GetString("save-trace", "");
  if (!save_path.empty()) {
    SPINNER_CHECK_OK(sim::WriteLoadTrace(save_path, trace));
    std::printf("saved the day's trace to %s\n", save_path.c_str());
  }

  // The policy: scale out when the hottest machine runs past 100% of its
  // serving capacity, back in under 50%, with hysteresis + cooldown so
  // one noisy window never migrates vertices. Overridable via --policy
  // using the same spec grammar partition_tool and the lab use.
  const std::string spec = cli.GetString(
      "policy",
      StrFormat("watermark:high=1.0,low=0.5,machine-capacity=%lld,"
                "hysteresis=2,cooldown-ms=1500",
                static_cast<long long>(steady_max_load +
                                       steady_max_load / 20)));
  std::printf("policy: %s\ntrace:  %zu bursts, %lld events\n\n",
              spec.c_str(), trace.bursts.size(),
              static_cast<long long>(trace.num_events()));

  sim::ReplayOptions replay_options;
  replay_options.policy_spec = spec;
  replay_options.events_per_window = 400;
  auto replay = sim::ReplayTrace(&session, trace, replay_options);
  SPINNER_CHECK_OK(replay.status());
  const sim::PolicyReplayResult& result = *replay;

  std::printf("decision log (every applied window is an evaluation):\n%s",
              result.decision_log.c_str());
  std::printf(
      "\nday's scorecard: k %d -> %d in %d rescales, phi %.3f -> %.3f "
      "(min %.3f), rho max %.3f, %lld vertices moved "
      "(modeled migration %.3fs)\n",
      result.initial_k, result.final_k, result.rescales,
      result.initial_phi, result.final_phi, result.min_phi, result.max_rho,
      static_cast<long long>(result.moved_vertices),
      result.migration_seconds);
  std::printf(
      "\nthe loop is closed: the same signals the observer publishes "
      "(phi/rho/loads) drove every transition, and each one reused the "
      "previous assignment instead of repartitioning from scratch.\n");
  return 0;
}
