// Elastic cloud scaling (paper §III.E / §V.E scenario): the cluster grows
// from 8 to 12 machines at peak traffic, then shrinks to 6 overnight. The
// partitioning follows the machine count without ever repartitioning from
// scratch.
//
//   ./elastic_scaling [--initial-k=8]
#include <cstdio>

#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "spinner/partitioner.h"

using namespace spinner;

namespace {

void Report(const char* phase, const PartitionResult& result,
            double moved_pct) {
  std::printf("%-28s k=%-3d phi=%.3f rho=%.3f iterations=%-3d moved=%.1f%%\n",
              phase, result.num_partitions, result.metrics.phi,
              result.metrics.rho, result.iterations, moved_pct);
}

double MovedPct(const std::vector<PartitionId>& before,
                const std::vector<PartitionId>& after) {
  auto moved = PartitioningDifference(before, after);
  SPINNER_CHECK_OK(moved.status());
  return 100.0 * *moved;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int initial_k = static_cast<int>(cli.GetInt("initial-k", 8));

  auto graph = WattsStrogatz(12000, 8, 0.25, 3);
  SPINNER_CHECK_OK(graph.status());
  auto converted = BuildSymmetric(graph->num_vertices, graph->edges);
  SPINNER_CHECK_OK(converted.status());

  // Morning: steady state on `initial_k` machines.
  SpinnerConfig config;
  config.num_partitions = initial_k;
  SpinnerPartitioner partitioner(config);
  auto steady = partitioner.Partition(*converted);
  SPINNER_CHECK_OK(steady.status());
  Report("morning steady state", *steady, 0.0);

  // Peak: scale out to 12 machines. Vertices migrate to the new
  // partitions with probability n/(k+n) (paper Eq. 11), then label
  // propagation re-optimizes.
  auto scaled_out = partitioner.Rescale(*converted, steady->assignment, 12);
  SPINNER_CHECK_OK(scaled_out.status());
  Report("peak: scale out to 12", *scaled_out,
         MovedPct(steady->assignment, scaled_out->assignment));

  // Night: scale in to 6 machines. Partitions 6..11 are evacuated
  // uniformly at random, then re-optimized.
  SpinnerConfig night_config = config;
  night_config.num_partitions = 12;  // previous k
  SpinnerPartitioner night_partitioner(night_config);
  auto scaled_in =
      night_partitioner.Rescale(*converted, scaled_out->assignment, 6);
  SPINNER_CHECK_OK(scaled_in.status());
  Report("night: scale in to 6", *scaled_in,
         MovedPct(scaled_out->assignment, scaled_in->assignment));

  std::printf("\nevery transition reused the previous assignment: balance "
              "recovered at each new k with far fewer moves than a "
              "from-scratch repartitioning (which moves ~95%%).\n");
  return 0;
}
