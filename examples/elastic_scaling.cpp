// Elastic cloud scaling (paper §III.E / §V.E scenario): the cluster grows
// from 8 to 12 machines at peak traffic, then shrinks to 6 overnight. The
// partitioning follows the machine count without ever repartitioning from
// scratch.
//
// Written against PartitioningSession: the session tracks the current k,
// so each transition is one Rescale() call — no manual bookkeeping of
// which k the previous assignment was computed for.
//
//   ./elastic_scaling [--initial-k=8]
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "graph/generators.h"
#include "spinner/session.h"

using namespace spinner;

namespace {

void Report(const char* phase, const PartitioningSession& session,
            double moved_pct) {
  const PartitionResult& result = session.last_result();
  std::printf("%-28s k=%-3d phi=%.3f rho=%.3f iterations=%-3d moved=%.1f%%\n",
              phase, session.num_partitions(), result.metrics.phi,
              result.metrics.rho, result.iterations, moved_pct);
}

double MovedPct(const std::vector<PartitionId>& before,
                const std::vector<PartitionId>& after) {
  auto moved = PartitioningDifference(before, after);
  SPINNER_CHECK_OK(moved.status());
  return 100.0 * *moved;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int initial_k = static_cast<int>(cli.GetInt("initial-k", 8));

  auto graph = WattsStrogatz(12000, 8, 0.25, 3);
  SPINNER_CHECK_OK(graph.status());

  // Morning: steady state on `initial_k` machines.
  SpinnerConfig config;
  config.num_partitions = initial_k;
  PartitioningSession session(config);
  SPINNER_CHECK_OK(
      session.Open(graph->num_vertices, graph->edges, graph->directed));
  Report("morning steady state", session, 0.0);

  // Peak: scale out to 12 machines. Vertices migrate to the new
  // partitions with probability n/(k+n) (paper Eq. 11), then label
  // propagation re-optimizes.
  std::vector<PartitionId> before = session.assignment();
  SPINNER_CHECK_OK(session.Rescale(12));
  Report("peak: scale out to 12", session,
         MovedPct(before, session.assignment()));

  // Night: scale in to 6 machines. Partitions 6..11 are evacuated
  // uniformly at random, then re-optimized. The session remembers the
  // current k, so no fresh partitioner configuration is needed.
  before = session.assignment();
  SPINNER_CHECK_OK(session.Rescale(6));
  Report("night: scale in to 6", session,
         MovedPct(before, session.assignment()));

  std::printf("\nevery transition reused the previous assignment: balance "
              "recovered at each new k with far fewer moves than a "
              "from-scratch repartitioning (which moves ~95%%).\n");
  return 0;
}
