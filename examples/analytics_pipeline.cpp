// Analytics pipeline (paper §V.F scenario): partition a hub-heavy social
// graph with Spinner, hand the assignment to the processing engine as its
// vertex placement, and run the paper's three analytics — shortest paths,
// PageRank, connected components — comparing simulated cluster runtime
// against default hash placement.
//
//   ./analytics_pipeline [--workers=16]
#include <cstdio>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "apps/wcc.h"
#include "common/cli.h"
#include "graph/conversion.h"
#include "graph/generators.h"
#include "simulator/cluster_simulator.h"
#include "spinner/partitioner.h"

using namespace spinner;

int main(int argc, char** argv) {
  CommandLine cli;
  SPINNER_CHECK_OK(cli.Parse(argc, argv));
  const int workers = static_cast<int>(cli.GetInt("workers", 16));

  auto social = BarabasiAlbert(15000, 6, 6, 11);
  SPINNER_CHECK_OK(social.status());
  auto g = BuildSymmetric(social->num_vertices, social->edges);
  SPINNER_CHECK_OK(g.status());

  // Step 1: compute the partitioning (one partition per worker).
  SpinnerConfig config;
  config.num_partitions = workers;
  SpinnerPartitioner partitioner(config);
  auto partition = partitioner.Partition(*g);
  SPINNER_CHECK_OK(partition.status());
  std::printf("spinner partitioning: phi=%.3f rho=%.3f (%d iterations)\n\n",
              partition->metrics.phi, partition->metrics.rho,
              partition->iterations);

  auto hash = pregel::HashPlacement(workers);
  auto by_label = pregel::LabelPlacement(partition->assignment, workers);

  // Step 2: run each analytic under both placements on the simulated
  // cluster and report the speedup.
  std::printf("%-22s %-14s %-14s %-10s\n", "application",
              "hash (ms)", "spinner (ms)", "speedup");

  auto report = [](const char* name, double hash_s, double spinner_s) {
    std::printf("%-22s %-14.2f %-14.2f %.2fx\n", name, hash_s * 1e3,
                spinner_s * 1e3, hash_s / spinner_s);
  };

  {
    apps::SsspProgram h_prog(0);
    apps::SsspProgram s_prog(0);
    auto h = sim::RunOnCluster<apps::SsspVertex, char, int64_t>(
        *g, workers, hash, h_prog,
        [](VertexId) { return apps::SsspVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    auto s = sim::RunOnCluster<apps::SsspVertex, char, int64_t>(
        *g, workers, by_label, s_prog,
        [](VertexId) { return apps::SsspVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    report("shortest paths (BFS)", h.simulation.total_seconds,
           s.simulation.total_seconds);
  }
  {
    apps::PageRankProgram h_prog(20);
    apps::PageRankProgram s_prog(20);
    auto h = sim::RunOnCluster<apps::PageRankVertex, char, double>(
        *g, workers, hash, h_prog,
        [](VertexId) { return apps::PageRankVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    auto s = sim::RunOnCluster<apps::PageRankVertex, char, double>(
        *g, workers, by_label, s_prog,
        [](VertexId) { return apps::PageRankVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    report("pagerank (20 iters)", h.simulation.total_seconds,
           s.simulation.total_seconds);
    std::printf("  remote messages: %lld -> %lld\n",
                static_cast<long long>(h.simulation.remote_messages),
                static_cast<long long>(s.simulation.remote_messages));
  }
  {
    apps::WccProgram h_prog;
    apps::WccProgram s_prog;
    auto h = sim::RunOnCluster<apps::WccVertex, char, VertexId>(
        *g, workers, hash, h_prog,
        [](VertexId) { return apps::WccVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    auto s = sim::RunOnCluster<apps::WccVertex, char, VertexId>(
        *g, workers, by_label, s_prog,
        [](VertexId) { return apps::WccVertex{}; },
        [](VertexId, VertexId, EdgeWeight) { return char{}; });
    report("connected components", h.simulation.total_seconds,
           s.simulation.total_seconds);
  }

  std::printf("\nplacement is the only thing that changed — results are "
              "identical, the network traffic is not.\n");
  return 0;
}
