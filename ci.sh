#!/usr/bin/env bash
# Tier-1 verification matrix: Debug + Release, warnings as errors, tests
# labeled tier1 (benches build but are excluded from the gate).
# Mirrors .github/workflows/ci.yml so the gate is reproducible locally.
#
# Sanitizer mode (one configuration instead of the matrix):
#   ./ci.sh --sanitize=asan   # AddressSanitizer + UBSan
#   ./ci.sh --sanitize=tsan   # ThreadSanitizer (shard-parallel supersteps
#                             # and the Pregel engine must be clean)
#
# Cross-process mode (one Release configuration):
#   ./ci.sh --mode=multiprocess
# Builds Release, runs the dist-subsystem tests (wire format, transport,
# chunked streaming, multi-process invariance and crash paths), then
# smoke-tests `partition_tool --processes=3` and diffs its assignment
# byte-for-byte against the in-process run — the execution mode must never
# change the partitioning.
#
# Wire-stress mode (one Release configuration):
#   ./ci.sh --mode=wire-stress
# The multiprocess lane with the transport's frame payload ceiling forced
# to 4 KiB (SPINNER_WIRE_MAX_PAYLOAD + --wire-max-payload): every Setup
# slice download, label transfer and snapshot upload exceeds one frame, so
# the chunk split/reassembly paths execute end-to-end on every push and
# the result must still be byte-identical to in-process.
#
# TCP mode (one Release configuration):
#   ./ci.sh --mode=tcp
# Builds Release, runs the TCP/registry/shard-store/execution-options
# tests, then the docs/DISTRIBUTED.md walkthrough: a coordinator plus 3
# dial-in `partition_tool worker` processes over 127.0.0.1, each with a
# persistent shard store, diffed byte-for-byte against the in-process
# run — twice, so the second run exercises the Assign/Resume
# zero-download restart path against the populated stores.
#
# Chaos mode (one ASan Release configuration):
#   ./ci.sh --mode=chaos
# Builds RelWithDebInfo with AddressSanitizer, runs the failure-recovery
# and fault-injection tests, then the failover smoke: a coordinator with
# recovery armed drives 3 dial-in workers, one of which kills itself
# mid-superstep (`worker --fail-after-scores`), under a benign
# SPINNER_FAULT_PLAN of frame delays — the run must survive the failover
# and stay byte-identical to the in-process assignment (delays and
# recovery preserve bytes by construction; docs/DISTRIBUTED.md).
#
# SIMD-parity mode (two Release configurations):
#   ./ci.sh --mode=simd-parity
# Builds Release with SPINNER_SIMD=ON (the default) and =OFF, runs the
# kernel/scheduler/session tests in both, then diffs a partition_tool
# run byte-for-byte across the two binaries — the vectorized dense scan
# must be a pure speed knob, never a results knob (docs/PERFORMANCE.md).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

SANITIZE=""
MODE=""
for arg in "$@"; do
  case "${arg}" in
    --sanitize=asan) SANITIZE="address" ;;
    --sanitize=tsan) SANITIZE="thread" ;;
    --sanitize=*)
      echo "ci.sh: unknown sanitizer '${arg#--sanitize=}' (asan|tsan)" >&2
      exit 2
      ;;
    --mode=multiprocess) MODE="multiprocess" ;;
    --mode=wire-stress) MODE="wire-stress" ;;
    --mode=tcp) MODE="tcp" ;;
    --mode=chaos) MODE="chaos" ;;
    --mode=simd-parity) MODE="simd-parity" ;;
    --mode=*)
      echo "ci.sh: unknown mode '${arg#--mode=}'" \
        "(multiprocess|wire-stress|tcp|chaos|simd-parity)" >&2
      exit 2
      ;;
    *)
      echo "ci.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

if [[ -n "${SANITIZE}" && -n "${MODE}" ]]; then
  # Each selects one whole configuration; silently ignoring one of the
  # two would run something other than what was asked for.
  echo "ci.sh: --sanitize and --mode are mutually exclusive" >&2
  exit 2
fi

if [[ "${MODE}" == "simd-parity" ]]; then
  # Two Release builds differing only in the SPINNER_SIMD knob. The
  # dense SIMD scan and the scalar reference are bit-identical by
  # construction (lpa_kernel.h), so the OFF build must pass the same
  # kernel/scheduler/session tests and produce byte-identical
  # partitions.
  declare -A simd_dirs=([on]=build-ci-simd-on [off]=build-ci-simd-off)
  for knob in on off; do
    build_dir="${simd_dirs[${knob}]}"
    echo "=== Release (-Werror, SPINNER_SIMD=${knob^^}) ==="
    cmake -B "${build_dir}" -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DSPINNER_WERROR=ON \
      -DSPINNER_SIMD="${knob^^}"
    cmake --build "${build_dir}" -j "${JOBS}"
    ctest --test-dir "${build_dir}" \
      -R '(LpaKernel|ShardedStore|StealSchedule|StealingSupersteps|Session)' \
      --timeout 120 --output-on-failure -j "${JOBS}"
  done

  echo "=== SIMD=ON vs SIMD=OFF partition_tool diff (byte-for-byte) ==="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  "./${simd_dirs[on]}/partition_tool" generate \
    --out="${smoke_dir}/edges.txt" --vertices=5000 --seed=7
  for knob in on off; do
    "./${simd_dirs[${knob}]}/partition_tool" partition \
      --input="${smoke_dir}/edges.txt" --k=16 --seed=11 \
      --out="${smoke_dir}/simd_${knob}.txt"
  done
  cmp "${smoke_dir}/simd_on.txt" "${smoke_dir}/simd_off.txt"
  echo "ci.sh: SIMD=ON and SIMD=OFF assignments are byte-identical"
  exit 0
fi

if [[ "${MODE}" == "chaos" ]]; then
  # Recovery code paths (deadlines, fleet rebuild, state replay, the
  # fault proxy's pump threads) under AddressSanitizer: a failover that
  # leaks endpoints or races the proxies fails here loudly.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
  build_dir="build-ci-chaos"
  echo "=== RelWithDebInfo (-Werror, -fsanitize=address, chaos lane) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPINNER_WERROR=ON \
    -DSPINNER_SANITIZE=address
  cmake --build "${build_dir}" -j "${JOBS}"

  echo "=== recovery + fault-injection tests (ASan) ==="
  ctest --test-dir "${build_dir}" \
    -R '^(Recovery|FaultPlan|Tcp|MultiProcess)' \
    --output-on-failure -j "${JOBS}"

  echo "=== failover smoke: 3 workers, one dies mid-superstep ==="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  listen="127.0.0.1:17078"
  "./${build_dir}/partition_tool" generate \
    --out="${smoke_dir}/edges.txt" --vertices=5000 --seed=7
  "./${build_dir}/partition_tool" partition \
    --input="${smoke_dir}/edges.txt" --k=16 --seed=11 \
    --out="${smoke_dir}/in_process.txt"
  # Workers 0 and 1 are healthy; worker 2 kills itself (_exit(3)) while
  # handling its 3rd score superstep — mid-run, after the fleet is fully
  # assigned. With --recover the coordinator must absorb its shards onto
  # the survivors and finish. The fault plan adds deterministic frame
  # delays on every connection: bytes are preserved, so the assignment
  # must STILL be byte-identical to the in-process run.
  "./${build_dir}/partition_tool" worker \
    --connect="${listen}" --store="${smoke_dir}/store0" &
  worker0="$!"
  "./${build_dir}/partition_tool" worker \
    --connect="${listen}" --store="${smoke_dir}/store1" &
  worker1="$!"
  "./${build_dir}/partition_tool" worker \
    --connect="${listen}" --fail-after-scores=2 &
  doomed="$!"
  SPINNER_FAULT_PLAN="seed=7;delay:p=0.15:ms=2" \
    "./${build_dir}/partition_tool" partition \
    --input="${smoke_dir}/edges.txt" --k=16 --seed=11 --shards=6 \
    --transport=tcp --listen="${listen}" --workers=3 \
    --recover=2 --rpc-timeout-ms=4000 --heartbeat-ms=50 \
    --out="${smoke_dir}/chaos.txt"
  wait "${worker0}" "${worker1}"
  # The doomed worker's _exit(3) is the expected crash, not a lane error.
  doomed_rc=0
  wait "${doomed}" || doomed_rc="$?"
  if [[ "${doomed_rc}" -ne 3 ]]; then
    echo "ci.sh: doomed worker exited ${doomed_rc}, expected 3" >&2
    exit 1
  fi
  cmp "${smoke_dir}/in_process.txt" "${smoke_dir}/chaos.txt"
  echo "ci.sh: run survived a mid-superstep worker loss under frame" \
    "delays, assignment byte-identical to in-process"
  exit 0
fi

if [[ -n "${MODE}" ]]; then
  build_dir="build-ci-${MODE}"
  wire_flags=()
  if [[ "${MODE}" == "wire-stress" ]]; then
    # Force every whole-graph message across many 4 KiB frames: the env
    # var covers the ctest processes, the explicit flag additionally
    # exercises the config/CLI plumbing in the smoke run.
    export SPINNER_WIRE_MAX_PAYLOAD=4096
    wire_flags=(--wire-max-payload=4096)
  fi
  echo "=== Release (-Werror, ${MODE} lane) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DSPINNER_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"

  if [[ "${MODE}" == "tcp" ]]; then
    echo "=== TCP-subsystem tests ==="
    ctest --test-dir "${build_dir}" \
      -R '^(Tcp|PersistentShardStore|WorkerLayout|ExecutionOptions|WireFormat|Transport)' \
      --output-on-failure -j "${JOBS}"

    echo "=== coordinator + 3 dial-in workers smoke (byte-for-byte diff) ==="
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "${smoke_dir}"' EXIT
    listen="127.0.0.1:17077"
    "./${build_dir}/partition_tool" generate \
      --out="${smoke_dir}/edges.txt" --vertices=5000 --seed=7
    "./${build_dir}/partition_tool" partition \
      --input="${smoke_dir}/edges.txt" --k=16 --seed=11 \
      --out="${smoke_dir}/in_process.txt"
    # Run the TCP fleet twice against the same stores: the first run
    # populates shard_<id>.base files, the second must resume from them
    # (Assign/Resume fingerprints match -> empty Setups, zero download).
    for round in 1 2; do
      worker_pids=()
      for w in 0 1 2; do
        "./${build_dir}/partition_tool" worker \
          --connect="${listen}" --store="${smoke_dir}/store${w}" &
        worker_pids+=("$!")
      done
      # --shards=6 pins the shard count so every worker owns >= 1 shard
      # on any runner (the shard count never changes the assignment).
      "./${build_dir}/partition_tool" partition \
        --input="${smoke_dir}/edges.txt" --k=16 --seed=11 --shards=6 \
        --transport=tcp --listen="${listen}" --workers=3 \
        --out="${smoke_dir}/tcp_round${round}.txt"
      wait "${worker_pids[@]}"
      cmp "${smoke_dir}/in_process.txt" "${smoke_dir}/tcp_round${round}.txt"
    done
    for w in 0 1 2; do
      # Every worker's persistent store must hold at least one slice.
      ls "${smoke_dir}/store${w}"/shard_*.base > /dev/null
    done
    echo "ci.sh: tcp assignment is byte-identical to in-process," \
      "restart resumed from the persistent stores"
    exit 0
  fi

  echo "=== dist-subsystem tests ==="
  ctest --test-dir "${build_dir}" \
    -R '^(WireFormat|Transport|MultiProcess)' \
    --output-on-failure -j "${JOBS}"

  echo "=== partition_tool --processes=3 smoke (byte-for-byte diff) ==="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "${smoke_dir}"' EXIT
  # 5000 vertices: the label array alone is ~20 KiB and each shard slice
  # far larger, so under wire-stress every transfer needs several chunks.
  "./${build_dir}/partition_tool" generate \
    --out="${smoke_dir}/edges.txt" --vertices=5000 --seed=7
  "./${build_dir}/partition_tool" partition \
    --input="${smoke_dir}/edges.txt" --k=16 --seed=11 \
    --out="${smoke_dir}/in_process.txt"
  "./${build_dir}/partition_tool" partition \
    --input="${smoke_dir}/edges.txt" --k=16 --seed=11 --processes=3 \
    ${wire_flags[@]+"${wire_flags[@]}"} \
    --out="${smoke_dir}/multi_process.txt"
  cmp "${smoke_dir}/in_process.txt" "${smoke_dir}/multi_process.txt"
  echo "ci.sh: ${MODE} assignment is byte-identical to in-process"
  exit 0
fi

if [[ -n "${SANITIZE}" ]]; then
  # RelWithDebInfo keeps sanitized tier1 runs fast while preserving
  # symbolized reports; halt on the first finding so CI fails loudly.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  build_dir="build-ci-${SANITIZE}"
  echo "=== RelWithDebInfo (-Werror, -fsanitize=${SANITIZE}) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPINNER_WERROR=ON \
    -DSPINNER_SANITIZE="${SANITIZE}"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"
  echo "ci.sh: ${SANITIZE}-sanitized configuration passed"
  exit 0
fi

for build_type in Debug Release; do
  build_dir="build-ci-${build_type,,}"
  echo "=== ${build_type} (-Werror) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DSPINNER_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"
done

echo "ci.sh: all configurations passed"
