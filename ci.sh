#!/usr/bin/env bash
# Tier-1 verification matrix: Debug + Release, warnings as errors, tests
# labeled tier1 (benches build but are excluded from the gate).
# Mirrors .github/workflows/ci.yml so the gate is reproducible locally.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

for build_type in Debug Release; do
  build_dir="build-ci-${build_type,,}"
  echo "=== ${build_type} (-Werror) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DSPINNER_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"
done

echo "ci.sh: all configurations passed"
