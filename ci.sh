#!/usr/bin/env bash
# Tier-1 verification matrix: Debug + Release, warnings as errors, tests
# labeled tier1 (benches build but are excluded from the gate).
# Mirrors .github/workflows/ci.yml so the gate is reproducible locally.
#
# Sanitizer mode (one configuration instead of the matrix):
#   ./ci.sh --sanitize=asan   # AddressSanitizer + UBSan
#   ./ci.sh --sanitize=tsan   # ThreadSanitizer (shard-parallel supersteps
#                             # and the Pregel engine must be clean)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

SANITIZE=""
for arg in "$@"; do
  case "${arg}" in
    --sanitize=asan) SANITIZE="address" ;;
    --sanitize=tsan) SANITIZE="thread" ;;
    --sanitize=*)
      echo "ci.sh: unknown sanitizer '${arg#--sanitize=}' (asan|tsan)" >&2
      exit 2
      ;;
    *)
      echo "ci.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

if [[ -n "${SANITIZE}" ]]; then
  # RelWithDebInfo keeps sanitized tier1 runs fast while preserving
  # symbolized reports; halt on the first finding so CI fails loudly.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  build_dir="build-ci-${SANITIZE}"
  echo "=== RelWithDebInfo (-Werror, -fsanitize=${SANITIZE}) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPINNER_WERROR=ON \
    -DSPINNER_SANITIZE="${SANITIZE}"
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"
  echo "ci.sh: ${SANITIZE}-sanitized configuration passed"
  exit 0
fi

for build_type in Debug Release; do
  build_dir="build-ci-${build_type,,}"
  echo "=== ${build_type} (-Werror) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DSPINNER_WERROR=ON
  cmake --build "${build_dir}" -j "${JOBS}"
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"
done

echo "ci.sh: all configurations passed"
